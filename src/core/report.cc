#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace ppsim::core {

namespace {

void print_histogram_row(std::ostream& os, const capture::IspHistogram& h) {
  for (auto c : net::kAllIspCategories) {
    os << "  " << std::setw(8) << net::to_string(c) << ": " << std::setw(10)
       << h.get(c) << "  (" << pct(h.share(c)) << ")\n";
  }
}

}  // namespace

std::string pct(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

void print_returned_addresses(std::ostream& os,
                              const capture::TraceAnalysis& a) {
  os << "Returned peer addresses by ISP (duplicates kept), total="
     << a.returned_addresses.total() << ", unique=" << a.unique_listed_ips
     << "\n";
  print_histogram_row(os, a.returned_addresses);
}

void print_list_sources(std::ostream& os, const capture::TraceAnalysis& a) {
  os << "Returned addresses by replier class (\"_p\" = normal peer, \"_s\" = "
        "tracker server)\n";
  // Deterministic row order: TELE_p, TELE_s, CNC_p, CNC_s, ...
  auto rows = a.list_sources;
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    if (x.replier_category != y.replier_category)
      return static_cast<int>(x.replier_category) <
             static_cast<int>(y.replier_category);
    return x.replier_is_tracker < y.replier_is_tracker;
  });
  for (const auto& row : rows) {
    os << "  " << net::to_string(row.replier_category)
       << (row.replier_is_tracker ? "_s" : "_p") << " (total "
       << row.listed.total() << "):";
    for (auto c : net::kAllIspCategories) {
      os << "  " << net::to_string(c) << "=" << row.listed.get(c);
    }
    os << "\n";
  }
  os << "  peer-list replies from peers: " << a.lists_from_peers
     << ", from trackers: " << a.lists_from_trackers << "\n";
}

void print_data_by_isp(std::ostream& os, const capture::TraceAnalysis& a) {
  os << "Data transmissions by ISP, total=" << a.data_transmissions.total()
     << "\n";
  print_histogram_row(os, a.data_transmissions);
  os << "Downloaded bytes by ISP, total=" << a.data_bytes.total() << "\n";
  print_histogram_row(os, a.data_bytes);
}

void print_response_times(std::ostream& os, const capture::TraceAnalysis& a,
                          bool data_requests) {
  const auto& samples = data_requests ? a.data_responses : a.list_responses;
  os << (data_requests ? "Data-request" : "Peer-list") << " response times\n";
  constexpr net::ResponseGroup groups[] = {net::ResponseGroup::kTele,
                                           net::ResponseGroup::kCnc,
                                           net::ResponseGroup::kOther};
  for (auto g : groups) {
    const auto n = a.response_count(samples, g);
    const double avg = data_requests ? a.avg_data_response(g)
                                     : a.avg_list_response(g);
    os << "  " << std::setw(6) << net::to_string(g) << ": n=" << std::setw(7)
       << n << "  avg=" << std::fixed << std::setprecision(4) << avg
       << " s\n";
  }
  if (!data_requests)
    os << "  unanswered peer-list requests: " << a.list_requests_unanswered
       << "\n";

  // Coarse series: mean response in 10 time bins, per group, to compare the
  // along-time shape with the paper's scatter plots.
  if (samples.empty()) return;
  const sim::Time t0 = samples.front().request_time;
  const sim::Time t1 = samples.back().request_time;
  const double span = std::max(1.0, (t1 - t0).as_seconds());
  for (auto g : groups) {
    double sums[10] = {};
    std::uint64_t ns[10] = {};
    for (const auto& s : samples) {
      if (s.group != g) continue;
      auto bin = static_cast<std::size_t>(
          std::min(9.0, (s.request_time - t0).as_seconds() / span * 10.0));
      sums[bin] += s.response_seconds;
      ++ns[bin];
    }
    os << "  series " << net::to_string(g) << " (mean per decile):";
    for (int b = 0; b < 10; ++b) {
      if (ns[b] == 0)
        os << "     -  ";
      else
        os << " " << std::fixed << std::setprecision(3)
           << sums[b] / static_cast<double>(ns[b]);
    }
    os << "\n";
  }
}

void print_contributions(std::ostream& os, const capture::TraceAnalysis& a) {
  os << "Unique peers connected for data transfer: "
     << a.unique_data_peers.total() << " (of " << a.unique_listed_ips
     << " unique listed IPs => "
     << pct(a.unique_listed_ips == 0
                ? 0.0
                : static_cast<double>(a.unique_data_peers.total()) /
                      static_cast<double>(a.unique_listed_ips))
     << " used)\n";
  print_histogram_row(os, a.unique_data_peers);

  const auto se = a.request_se_fit();
  const auto zipf = a.request_zipf_fit();
  os << "Request rank distribution fits:\n";
  os << "  stretched-exponential: c=" << std::fixed << std::setprecision(2)
     << se.c << "  a=" << std::setprecision(3) << se.a << "  b=" << se.b
     << "  R2=" << std::setprecision(6) << se.r2 << "\n";
  os << "  zipf (log-log line):   alpha=" << std::setprecision(3)
     << zipf.alpha << "  R2=" << std::setprecision(6) << zipf.r2 << "\n";
  os << "Concentration: top 10% of peers get "
     << pct(a.top_request_share(0.10)) << " of data requests and contribute "
     << pct(a.top_contribution_share(0.10)) << " of downloaded bytes\n";
}

void print_rtt_rank(std::ostream& os, const capture::TraceAnalysis& a) {
  os << "log(#requests) vs log(RTT) correlation coefficient: " << std::fixed
     << std::setprecision(3) << a.rtt_request_correlation() << "\n";
  os << "  rank |  requests |  RTT-estimate(s)\n";
  const std::size_t n = a.peers.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Print the head, a middle sample, and the tail of the ranked table.
    if (i >= 5 && i < n - 5 && i % std::max<std::size_t>(1, n / 10) != 0)
      continue;
    const auto& p = a.peers[i];
    os << "  " << std::setw(4) << (i + 1) << " | " << std::setw(9)
       << p.data_requests_matched << " | " << std::setprecision(4)
       << p.min_response_seconds << "\n";
  }
}

void print_traffic_matrix(std::ostream& os, const TrafficMatrix& m) {
  os << "Swarm data-traffic matrix (bytes, rows=serving ISP, cols=receiving "
        "ISP)\n        ";
  for (auto c : net::kAllIspCategories)
    os << std::setw(12) << net::to_string(c);
  os << "\n";
  for (auto from : net::kAllIspCategories) {
    os << std::setw(8) << net::to_string(from);
    for (auto to : net::kAllIspCategories) {
      os << std::setw(12)
         << m.bytes[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(to)];
    }
    os << "\n";
  }
  os << "  intra-ISP share of data bytes: " << pct(m.locality()) << "\n";
}

void print_peer_counters(std::ostream& os, const proto::PeerCounters& c) {
  os << "Swarm-wide protocol counters (all peers, probes included)\n";
  proto::for_each_field(c, [&](const char* name, const std::uint64_t& v) {
    os << "  " << std::setw(28) << std::left << name << std::right
       << std::setw(14) << v << "\n";
  });
}

void print_locality_timeseries(
    std::ostream& os, const std::vector<obs::TrafficSample>& samples) {
  os << "Locality time series (" << samples.size() << " samples)\n";
  os << "      t(s) | same-ISP cum | same-ISP intvl | nbr same-ISP | "
        "continuity | alive\n";
  for (const auto& s : samples) {
    os << "  " << std::setw(8) << std::fixed << std::setprecision(0)
       << s.t.as_seconds() << " | " << std::setw(12)
       << pct(s.same_isp_share_cum) << " | " << std::setw(14)
       << pct(s.same_isp_share_interval) << " | " << std::setw(12)
       << pct(s.neighbor_same_isp_share) << " | " << std::setw(10)
       << pct(s.avg_continuity) << " | " << std::setw(5) << s.alive_peers
       << "\n";
  }
}

void print_health_summary(std::ostream& os, const obs::HealthSummary& health) {
  os << "health: worst state " << obs::to_string(health.worst) << " ("
     << health.rules.size() << " rules)\n";
  char line[192];
  std::snprintf(line, sizeof(line),
                "  %-20s %-20s %9s %6s %6s %6s  %11s  %9s %9s\n", "kind",
                "label", "state", "trips", "crit", "clear", "first-trip",
                "last", "worst");
  os << line;
  for (const auto& [rule, status] : health.rules) {
    char first[24], last[24], worst[24];
    if (status.trips > 0)
      std::snprintf(first, sizeof(first), "%.0fs",
                    status.first_trip.as_seconds());
    else
      std::snprintf(first, sizeof(first), "%s", "-");
    std::snprintf(last, sizeof(last), "%.3g", status.last_value);
    if (status.trips > 0)
      std::snprintf(worst, sizeof(worst), "%.3g", status.worst_value);
    else
      std::snprintf(worst, sizeof(worst), "%s", "-");
    std::snprintf(line, sizeof(line),
                  "  %-20s %-20s %9s %6llu %6llu %6llu  %11s  %9s %9s\n",
                  std::string(obs::to_string(rule.kind)).c_str(),
                  rule.label.empty() ? "-" : rule.label.c_str(),
                  std::string(obs::to_string(status.state)).c_str(),
                  static_cast<unsigned long long>(status.trips),
                  static_cast<unsigned long long>(status.criticals),
                  static_cast<unsigned long long>(status.clears), first, last,
                  worst);
    os << line;
  }
}

void print_referral_lineage(
    std::ostream& os, const obs::LineageSummary& lineage,
    const std::vector<obs::ReferralShareBucket>& share) {
  os << "Referral lineage (" << lineage.total.referrals
     << " established neighbors)\n";
  char line[112];
  std::snprintf(line, sizeof line, "  %-10s %10s %10s %8s\n", "via",
                "referrals", "same-ISP", "share");
  os << line;
  for (const auto& [via, st] : lineage.by_via) {
    std::snprintf(line, sizeof line, "  %-10s %10llu %10llu %8s\n",
                  via.c_str(), static_cast<unsigned long long>(st.referrals),
                  static_cast<unsigned long long>(st.same_isp),
                  pct(st.share()).c_str());
    os << line;
  }
  std::snprintf(line, sizeof line, "  %-10s %10llu %10llu %8s\n", "total",
                static_cast<unsigned long long>(lineage.total.referrals),
                static_cast<unsigned long long>(lineage.total.same_isp),
                pct(lineage.total.share()).c_str());
  os << line;
  if (share.empty()) return;
  os << "  same-ISP referral share over time:\n";
  for (const auto& b : share) {
    std::snprintf(line, sizeof line,
                  "    [%6.0fs,%6.0fs)  n=%6llu  same=%6llu  share=%s\n",
                  b.t_start.as_seconds(), b.t_end.as_seconds(),
                  static_cast<unsigned long long>(b.referrals),
                  static_cast<unsigned long long>(b.same_isp),
                  pct(b.share()).c_str());
    os << line;
  }
}

void print_critical_paths(std::ostream& os,
                          const std::vector<obs::CriticalPath>& paths) {
  os << "Startup critical paths (" << paths.size()
     << " peers reached playback)\n";
  if (paths.empty()) return;
  // Bucketless percentile over the real samples: rank = ceil(q*n), clamped.
  const auto percentile = [](std::vector<double> v, double q) {
    std::sort(v.begin(), v.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(v.size())));
    return v[std::min(std::max<std::size_t>(rank, 1), v.size()) - 1];
  };
  char line[112];
  std::snprintf(line, sizeof line, "  %-16s %9s %9s %9s %10s\n", "stage",
                "p50(s)", "p90(s)", "p99(s)", "mean(s)");
  os << line;
  const auto row = [&](const char* name, const std::vector<double>& v) {
    double sum = 0;
    for (double x : v) sum += x;
    std::snprintf(line, sizeof line, "  %-16s %9.3f %9.3f %9.3f %10.3f\n",
                  name, percentile(v, 0.5), percentile(v, 0.9),
                  percentile(v, 0.99),
                  sum / static_cast<double>(v.size()));
    os << line;
  };
  for (std::size_t i = 0; i < obs::kStartupStageNames.size(); ++i) {
    std::vector<double> v;
    v.reserve(paths.size());
    for (const auto& p : paths) v.push_back(p.stages[i].as_seconds());
    row(obs::kStartupStageNames[i], v);
  }
  std::vector<double> totals;
  totals.reserve(paths.size());
  for (const auto& p : paths) totals.push_back(p.startup.as_seconds());
  row("startup(total)", totals);
}

}  // namespace ppsim::core
