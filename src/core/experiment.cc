#include "core/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "capture/trace.h"
#include "faults/driver.h"
#include "obs/dispatch_stats.h"
#include "net/impairment.h"
#include "net/latency.h"
#include "net/prefix_alloc.h"
#include "net/transport.h"
#include "proto/bootstrap.h"
#include "proto/peer.h"
#include "proto/source.h"
#include "proto/tracker.h"
#include "sim/simulator.h"

namespace ppsim::core {

ProbeSpec tele_probe() {
  return ProbeSpec{net::IspCategory::kTele, net::AccessClass::kAdsl, "TELE"};
}
ProbeSpec cnc_probe() {
  return ProbeSpec{net::IspCategory::kCnc, net::AccessClass::kAdsl, "CNC"};
}
ProbeSpec cer_probe() {
  return ProbeSpec{net::IspCategory::kCer, net::AccessClass::kCampus, "CER"};
}
ProbeSpec mason_probe() {
  return ProbeSpec{net::IspCategory::kForeign, net::AccessClass::kCampus,
                   "Mason"};
}

std::uint64_t TrafficMatrix::total() const {
  std::uint64_t t = 0;
  for (const auto& row : bytes)
    for (auto b : row) t += b;
  return t;
}

std::uint64_t TrafficMatrix::intra_isp() const {
  std::uint64_t t = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) t += bytes[i][i];
  return t;
}

double TrafficMatrix::locality() const {
  const std::uint64_t t = total();
  return t == 0 ? 0.0
                : static_cast<double>(intra_isp()) / static_cast<double>(t);
}

namespace {

/// Owns the whole simulated world for one run: shared bootstrap and
/// trackers, one stream source and audience per channel. Peers are kept
/// alive (even after leaving) until the run ends, because pending timer
/// callbacks hold raw pointers to them.
///
/// Doubles as the fault driver's FaultHost: it owns every seam a fault
/// window touches (tracker/bootstrap dark bits, the audience roster for
/// churn bursts and brownouts).
class Runner : public faults::FaultHost {
 public:
  explicit Runner(const MultiChannelConfig& config)
      : config_(config),
        master_rng_(config.seed),
        registry_(net::IspRegistry::standard_topology()),
        asn_db_(net::AsnDatabase::from_registry(registry_)),
        allocator_(registry_),
        network_(simulator_, make_latency_model(config.seed),
                 master_rng_.fork(0x6E6574)) {}

  ExperimentResult run();

  // --- faults::FaultHost (driven by the armed FaultDriver, if any) ---
  void set_tracker_dark(int group, bool dark) override {
    if (group < 0) {
      for (auto& tracker : trackers_) tracker->set_dark(dark);
    } else if (static_cast<std::size_t>(group) < trackers_.size()) {
      trackers_[static_cast<std::size_t>(group)]->set_dark(dark);
    }
  }

  void set_bootstrap_dark(bool dark) override { bootstrap_->set_dark(dark); }

  std::vector<net::IpAddress> alive_audience_ips() const override {
    std::vector<net::IpAddress> out;
    out.reserve(session_peers_.size());
    for (const auto* peer : session_peers_)
      if (peer->alive()) out.push_back(peer->ip());
    std::sort(out.begin(), out.end());
    return out;
  }

  void crash_peer(net::IpAddress ip) override {
    for (std::size_t i = 0; i < session_peers_.size(); ++i) {
      proto::Peer* peer = session_peers_[i];
      if (peer->ip() != ip || !peer->alive()) continue;
      peer->crash();
      sessions_[i].left = simulator_.now();
      sessions_[i].completed = true;
      // A crashed viewer restarts the application like any other departure,
      // so the audience stays stationary through a burst.
      on_departure(session_channels_[i]);
      return;
    }
  }

 private:
  static net::LatencyModel make_latency_model(std::uint64_t seed) {
    net::LatencyConfig lc;
    // Re-roll per-pair path multipliers per run (day) deterministically.
    lc.pair_salt = sim::hash_combine(lc.pair_salt, seed);
    return net::LatencyModel(lc);
  }

  net::IspId pick_isp(net::IspCategory category, sim::Rng& rng) {
    const auto ids = registry_.in_category(category);
    return ids[static_cast<std::size_t>(rng.next_below(ids.size()))];
  }

  proto::HostIdentity make_identity(net::IspCategory category,
                                    net::AccessClass access, sim::Rng& rng) {
    const net::IspId isp = pick_isp(category, rng);
    return proto::HostIdentity{allocator_.allocate(isp), isp, category,
                               net::AccessProfile::sample(access, rng)};
  }

  void build_infrastructure();
  void spawn_viewer(std::size_t channel_idx, net::IspCategory category,
                    sim::Time session);
  void on_departure(std::size_t channel_idx);
  void schedule_audience();
  void schedule_probes();
  sim::Time sample_session(std::size_t channel_idx, sim::Rng& rng);
  void collect_sample();
  void aggregate_counters(ExperimentResult& result);
  void export_metrics(const ExperimentResult& result);

  const MultiChannelConfig& config_;
  sim::Rng master_rng_;
  net::IspRegistry registry_;
  net::AsnDatabase asn_db_;
  net::PrefixAllocator allocator_;
  sim::Simulator simulator_;
  proto::PeerNetwork network_;

  // trace_dest_ is where protocol emitters actually point: the configured
  // trace sink, the span tracker, or a tee over both — resolved once at the
  // top of run(). Declared before every emitter (peers included) because
  // ~Peer still emits through it; members below destruct first.
  obs::TraceSink* trace_dest_ = nullptr;
  std::unique_ptr<obs::TeeTraceSink> trace_tee_;
  bool causal_ = false;

  std::unique_ptr<proto::BootstrapServer> bootstrap_;
  std::vector<std::unique_ptr<proto::TrackerServer>> trackers_;
  std::unordered_set<net::IpAddress> tracker_ips_;
  std::vector<std::unique_ptr<proto::StreamSource>> sources_;

  std::vector<std::unique_ptr<proto::Peer>> peers_;
  // sessions_[i] belongs to the audience peer in session_peers_[i], watching
  // channel session_channels_[i]; probes are excluded.
  std::vector<SessionRecord> sessions_;
  std::vector<proto::Peer*> session_peers_;
  std::vector<std::size_t> session_channels_;
  struct Probe {
    std::string label;
    proto::ChannelId channel = 0;
    proto::Peer* peer = nullptr;
    std::shared_ptr<capture::PacketTrace> trace;
  };
  std::vector<Probe> probes_;

  TrafficMatrix traffic_;
  std::uint64_t departures_ = 0;

  // Fault injection (inert unless config_.faults.plan has windows).
  net::ImpairmentOverlay impairments_;
  std::unique_ptr<faults::FaultDriver> fault_driver_;

  // Observability (all inert unless config_.observability enables them).
  obs::TrafficSampler sampler_;
  std::array<std::array<obs::Counter*, net::kNumIspCategories>,
             net::kNumIspCategories>
      matrix_counters_{};
  std::unique_ptr<obs::HealthMonitor> health_;
  // Stop flag for the periodic sampling chain: schedule_periodic re-arms
  // under fresh handles, so run() flips this after run_until and any
  // still-pending tick unschedules itself instead of firing work.
  bool sampling_active_ = false;
  bool progress_active_ = false;
};

void Runner::build_infrastructure() {
  sim::Rng infra_rng = master_rng_.fork(0x696E667261);

  // Bootstrap/channel server in a Chinese datacenter (TELE).
  bootstrap_ = std::make_unique<proto::BootstrapServer>(
      simulator_, network_,
      make_identity(net::IspCategory::kTele, net::AccessClass::kDatacenter,
                    infra_rng));

  // Five tracker groups at different locations in China (paper Section 2);
  // none abroad. One server per group at simulation scale; all channels
  // share them, as in the real deployment.
  const net::IspCategory tracker_sites[5] = {
      net::IspCategory::kTele, net::IspCategory::kTele,
      net::IspCategory::kCnc, net::IspCategory::kCnc,
      net::IspCategory::kCer};
  proto::TrackerConfig tracker_config;
  if (config_.locality_aware_trackers) tracker_config.locality_db = &asn_db_;
  std::vector<std::vector<net::IpAddress>> tracker_groups;
  for (const auto site : tracker_sites) {
    auto tracker = std::make_unique<proto::TrackerServer>(
        simulator_, network_,
        make_identity(site, net::AccessClass::kDatacenter, infra_rng),
        infra_rng.fork(trackers_.size()), tracker_config);
    tracker_ips_.insert(tracker->ip());
    tracker_groups.push_back({tracker->ip()});
    trackers_.push_back(std::move(tracker));
  }
  std::vector<net::IpAddress> tracker_list(tracker_ips_.begin(),
                                           tracker_ips_.end());

  // One stream source per channel, each in a TELE datacenter with bounded
  // upload so swarms stay peer-served.
  for (std::size_t c = 0; c < config_.channels.size(); ++c) {
    auto source_identity = make_identity(net::IspCategory::kTele,
                                         net::AccessClass::kDatacenter,
                                         infra_rng);
    source_identity.profile.up_bps = 8e6;  // seeds ~20 streams
    auto source = std::make_unique<proto::StreamSource>(
        simulator_, network_, source_identity,
        config_.channels[c].scenario.channel, tracker_list,
        infra_rng.fork(0x737263 + c));

    proto::BootstrapServer::ChannelEntry entry;
    entry.channel = config_.channels[c].scenario.channel.id;
    entry.tracker_groups = tracker_groups;
    entry.source = source->ip();
    bootstrap_->register_channel(std::move(entry));
    source->start();
    sources_.push_back(std::move(source));
  }

  // Pre-resolve the 5x5 bytes_uploaded{src_isp,dst_isp} counters so the
  // global tap never does a registry lookup on the hot path, and so the
  // metric values are *by construction* the same accumulation as the
  // ground-truth TrafficMatrix.
  if (obs::MetricsRegistry* metrics = config_.observability.metrics) {
    for (const auto src : net::kAllIspCategories) {
      for (const auto dst : net::kAllIspCategories) {
        matrix_counters_[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(dst)] = &metrics->counter(
            "bytes_uploaded",
            {{"src_isp", std::string(net::to_string(src))},
             {"dst_isp", std::string(net::to_string(dst))}});
      }
    }
  }

  if (obs::TraceSink* trace = trace_dest_) {
    for (auto& tracker : trackers_) tracker->set_trace_sink(trace);
    for (auto& source : sources_) source->set_trace_sink(trace);
    // The bootstrap only emits (bootstrap_serve) under causal tracing, so
    // wiring its sink here cannot perturb pre-causal trace files.
    if (causal_) bootstrap_->set_trace_sink(trace);
  }
  if (causal_) {
    bootstrap_->set_causal_tracing(true);
    for (auto& tracker : trackers_) tracker->set_causal_tracing(true);
    for (auto& source : sources_) source->set_causal_tracing(true);
  }

  network_.set_global_tap([this](const net::Endpoint& from,
                                 const net::Endpoint& to,
                                 const proto::Message& m, std::uint64_t) {
    if (const auto* dr = std::get_if<proto::DataReply>(&m)) {
      const auto src = static_cast<std::size_t>(from.category);
      const auto dst = static_cast<std::size_t>(to.category);
      traffic_.bytes[src][dst] += dr->payload_bytes;
      if (matrix_counters_[src][dst] != nullptr)
        matrix_counters_[src][dst]->inc(dr->payload_bytes);
    }
  });
}

/// One Figure-6-style snapshot: traffic-matrix cumulative state plus the
/// swarm's current neighbor composition and continuity. Runs inside the
/// event loop but touches no RNG and mutates no protocol state, so
/// enabling sampling cannot change the simulated trajectory.
void Runner::collect_sample() {
  double continuity_acc = 0;
  std::uint64_t viewers = 0;
  std::uint64_t alive = 0;
  std::uint64_t isolated = 0;
  std::uint64_t same_isp_links = 0;
  std::uint64_t total_links = 0;
  for (const auto& peer : peers_) {
    if (!peer->alive()) continue;
    ++alive;
    const auto& c = peer->counters();
    if (c.chunks_played + c.chunks_missed > 0) {
      continuity_acc += c.continuity();
      ++viewers;
    }
    const net::IspCategory own = peer->identity().category;
    std::uint64_t links = 0;
    for (const auto& ip : peer->neighbor_ips()) {
      ++links;
      if (asn_db_.category_or_foreign(ip) == own) ++same_isp_links;
    }
    total_links += links;
    if (links == 0) ++isolated;
  }
  const obs::TrafficSample& sample = sampler_.record(
      simulator_.now(), traffic_.bytes,
      total_links == 0 ? 0.0
                       : static_cast<double>(same_isp_links) /
                             static_cast<double>(total_links),
      viewers == 0 ? 0.0 : continuity_acc / static_cast<double>(viewers),
      alive);
  if (config_.observability.recorder != nullptr)
    config_.observability.recorder->note_sample(sample);
  if (health_ != nullptr) {
    obs::HealthInput input;
    input.t = sample.t;
    input.avg_continuity = sample.avg_continuity;
    input.same_isp_share_interval = sample.same_isp_share_interval;
    input.interval_bytes = sample.interval_bytes;
    input.alive_peers = sample.alive_peers;
    input.isolated_peers = isolated;
    for (std::size_t i = 0; i < session_peers_.size(); ++i) {
      const proto::Peer* peer = session_peers_[i];
      if (peer->alive() && !peer->playback_started())
        input.startup_waits_s.push_back(
            (simulator_.now() - sessions_[i].joined).as_seconds());
    }
    input.queue_depth = simulator_.pending_events();
    health_->evaluate(input);
  }
  if (obs::ResourceProbe* probe = config_.observability.resource) {
    // Live-byte accounting only runs with a probe attached, so the plain
    // sampling path keeps its cost unchanged.
    std::uint64_t live_bytes = 0;
    for (const auto& peer : peers_)
      if (peer->alive()) live_bytes += peer->approx_live_bytes();
    obs::ResourceProbe::Inputs in;
    in.now = simulator_.now();
    in.queue_depth = simulator_.pending_events();
    in.event_horizon = simulator_.latest_scheduled() - simulator_.now();
    in.events_executed = simulator_.events_executed();
    in.queue_bytes = simulator_.approx_queue_bytes();
    in.live_peers = alive;
    in.live_peer_bytes = live_bytes;
    if (const obs::RunProfiler* prof = config_.observability.profiler)
      in.wall_seconds = prof->wall_seconds_total();
    probe->sample(in);
  }
}

void Runner::aggregate_counters(ExperimentResult& result) {
  for (const auto& peer : peers_) {
    const proto::PeerCounters& c = peer->counters();
    result.counter_totals += c;
    result.counters_by_isp[static_cast<std::size_t>(
        peer->identity().category)] += c;
  }
}

void Runner::export_metrics(const ExperimentResult& result) {
  obs::MetricsRegistry* m = config_.observability.metrics;
  if (m == nullptr) return;
  // Aggregated protocol counters, one series per ISP category, one metric
  // per PeerCounters field. for_each_field guarantees nothing is dropped.
  for (const auto cat : net::kAllIspCategories) {
    const proto::PeerCounters& c =
        result.counters_by_isp[static_cast<std::size_t>(cat)];
    proto::for_each_field(c, [&](const char* name, const std::uint64_t& v) {
      m->counter(std::string("peer_") + name,
                 {{"isp", std::string(net::to_string(cat))}})
          .inc(v);
    });
  }
  m->gauge("avg_continuity").set(result.swarm.avg_continuity);
  m->counter("peers_spawned").inc(result.swarm.peers_spawned);
  m->counter("departures").inc(result.swarm.departures);
  m->counter("packets_delivered").inc(result.swarm.packets_delivered);
  m->counter("packets_dropped").inc(result.swarm.packets_dropped);
  m->counter("events_executed").inc(result.swarm.events_executed);
  auto& durations = m->histogram("session_duration_s",
                                 {30, 60, 120, 300, 600, 1200, 3600});
  auto& continuity =
      m->histogram("session_continuity", {0.5, 0.8, 0.9, 0.95, 0.99});
  for (const auto& rec : result.sessions) {
    durations.observe(rec.duration_seconds());
    continuity.observe(rec.continuity);
  }
}

sim::Time Runner::sample_session(std::size_t channel_idx, sim::Rng& rng) {
  // Heavy-tailed session lengths: Weibull with shape < 1.
  const double mean_s =
      config_.channels[channel_idx].scenario.mean_session.as_seconds();
  // For Weibull(lambda, k): mean = lambda * Gamma(1 + 1/k).
  // With k = 0.6, Gamma(1 + 1/0.6) = Gamma(2.667) ~= 1.503.
  const double lambda = mean_s / 1.503;
  const double s = rng.weibull(lambda, 0.6);
  return sim::Time::from_seconds(std::clamp(s, 10.0, 4 * 3600.0));
}

void Runner::on_departure(std::size_t channel_idx) {
  ++departures_;
  // A broadcast-event audience drains; nobody replaces a viewer who left.
  if (config_.channels[channel_idx].scenario.curve ==
      workload::AudienceCurve::kBroadcastEvent)
    return;
  sim::Rng churn_rng = master_rng_.fork(0x636875726E + departures_);
  const sim::Time gap = sim::Time::from_seconds(churn_rng.exponential(
      config_.channels[channel_idx].scenario.mean_rejoin_gap.as_seconds()));

  // Channel surfing: the viewer may resurface on another channel. The surf
  // draw only happens in multi-channel worlds, so single-channel runs
  // consume exactly the same random stream as before this feature existed.
  std::size_t next_channel = channel_idx;
  if (config_.channels.size() > 1 && config_.surf_probability > 0 &&
      churn_rng.chance(config_.surf_probability)) {
    const std::size_t other = static_cast<std::size_t>(
        churn_rng.next_below(config_.channels.size() - 1));
    next_channel = other >= channel_idx ? other + 1 : other;
  }
  const net::IspCategory cat =
      config_.channels[next_channel].scenario.mix.sample(churn_rng);
  simulator_.schedule(gap, [this, next_channel, cat] {
    sim::Rng r = master_rng_.fork(0x73657373 + peers_.size());
    spawn_viewer(next_channel, cat, sample_session(next_channel, r));
  });
}

void Runner::spawn_viewer(std::size_t channel_idx, net::IspCategory category,
                          sim::Time session) {
  sim::Rng rng = master_rng_.fork(0x7065657200 + peers_.size());
  const net::AccessClass access = workload::access_class_for(category, rng);
  auto identity = make_identity(category, access, rng);
  auto policy = baseline::make_policy(config_.strategy, &asn_db_, category);
  proto::PeerConfig peer_config = config_.peer_config;
  peer_config.behind_nat = rng.chance(workload::nat_probability(access));
  const auto& scenario = config_.channels[channel_idx].scenario;
  auto peer = std::make_unique<proto::Peer>(
      simulator_, network_, identity, scenario.channel, bootstrap_->ip(),
      rng.fork(1), peer_config, std::move(policy));
  proto::Peer* raw = peer.get();
  raw->set_trace_sink(trace_dest_);
  if (causal_) raw->set_causal_tracing(true);
  peers_.push_back(std::move(peer));
  SessionRecord record;
  record.channel = scenario.channel.id;
  record.category = category;
  record.behind_nat = peer_config.behind_nat;
  record.joined = simulator_.now();
  const std::size_t session_idx = sessions_.size();
  sessions_.push_back(record);
  session_peers_.push_back(raw);
  session_channels_.push_back(channel_idx);
  raw->join();

  // Departure + stationary replacement (possibly on another channel).
  simulator_.schedule(session, [this, raw, session_idx, channel_idx] {
    if (!raw->alive()) return;
    raw->leave();
    sessions_[session_idx].left = simulator_.now();
    sessions_[session_idx].completed = true;
    on_departure(channel_idx);
  });
}

void Runner::schedule_audience() {
  for (std::size_t c = 0; c < config_.channels.size(); ++c) {
    sim::Rng rng = master_rng_.fork(
        c == 0 ? 0x617564 : sim::hash_combine(0x617564, c));
    const auto& sc = config_.channels[c].scenario;
    const double total_s = config_.duration.as_seconds();
    for (int i = 0; i < sc.viewers; ++i) {
      const net::IspCategory cat = sc.mix.sample(rng);
      sim::Time when;
      sim::Rng srng = rng.fork(static_cast<std::uint64_t>(i));
      sim::Time session;
      if (sc.curve == workload::AudienceCurve::kBroadcastEvent) {
        // Flood in around the program start, trickle through the first
        // half; most viewers stay until near the end.
        const double arrive =
            rng.chance(0.7) ? rng.uniform(0.0, 0.15 * total_s)
                            : rng.uniform(0.15 * total_s, 0.6 * total_s);
        when = sim::Time::from_seconds(arrive);
        if (srng.chance(0.75)) {
          // Watches to (roughly) the end of the broadcast.
          session = sim::Time::from_seconds(
              std::max(30.0, (total_s - arrive) * srng.uniform(0.85, 1.1)));
        } else {
          session = sample_session(c, srng);  // zapper
        }
      } else {
        when = sim::Time::from_seconds(
            rng.uniform(0.0, sc.arrival_ramp.as_seconds()));
        session = sample_session(c, srng);
      }
      simulator_.schedule(when, [this, c, cat, session] {
        spawn_viewer(c, cat, session);
      });
    }
  }
}

void Runner::schedule_probes() {
  sim::Rng rng = master_rng_.fork(0x70726F6265);
  for (std::size_t c = 0; c < config_.channels.size(); ++c) {
    for (const auto& spec : config_.channels[c].probes) {
      sim::Rng prng = rng.fork(probes_.size());
      auto identity = make_identity(spec.isp, spec.access, prng);
      auto policy =
          baseline::make_policy(config_.strategy, &asn_db_, spec.isp);
      auto peer = std::make_unique<proto::Peer>(
          simulator_, network_, identity,
          config_.channels[c].scenario.channel, bootstrap_->ip(),
          prng.fork(1), config_.peer_config, std::move(policy));
      proto::Peer* raw = peer.get();
      raw->set_trace_sink(trace_dest_);
      if (causal_) raw->set_causal_tracing(true);
      auto trace = capture::attach_sniffer(network_, identity.ip);
      peers_.push_back(std::move(peer));
      probes_.push_back(Probe{spec.label,
                              config_.channels[c].scenario.channel.id, raw,
                              std::move(trace)});
      simulator_.schedule(config_.probe_join_at, [raw] { raw->join(); });
    }
  }
}

ExperimentResult Runner::run() {
  // Resolve the effective trace destination before any emitter is built.
  // Attaching a span tracker implies causal tracing: spans without span ids
  // would be an empty artifact.
  causal_ = config_.observability.causal_trace ||
            config_.observability.spans != nullptr;
  trace_dest_ = config_.observability.trace;
  if (obs::SpanTracker* spans = config_.observability.spans) {
    if (trace_dest_ != nullptr) {
      trace_tee_ = std::make_unique<obs::TeeTraceSink>(
          std::initializer_list<obs::TraceSink*>{trace_dest_, spans});
      trace_dest_ = trace_tee_.get();
    } else {
      trace_dest_ = spans;
    }
  }

  if (config_.interconnects.has_value())
    network_.set_interconnects(*config_.interconnects);
  build_infrastructure();
  schedule_audience();
  schedule_probes();

  // Arm the fault plan up front so every window boundary sits on the
  // simulator clock before the first event runs. Without a plan, no
  // overlay is installed and the transport path is untouched.
  if (!config_.faults.plan.empty()) {
    network_.set_impairments(&impairments_);
    faults::FaultDriver::Options fault_options;
    fault_options.seed =
        config_.faults.fault_seed != 0
            ? config_.faults.fault_seed
            : sim::hash_combine(config_.seed, 0x6661756C7473ULL);
    fault_options.trace = trace_dest_;
    fault_options.metrics = config_.observability.metrics;
    fault_driver_ = std::make_unique<faults::FaultDriver>(
        simulator_, impairments_, *this, config_.faults.plan, fault_options);
    fault_driver_->arm();
  }

  if (config_.observability.profiler != nullptr)
    simulator_.add_observer(config_.observability.profiler);
  std::unique_ptr<obs::SimEventTracer> sim_tracer;
  if (config_.observability.trace != nullptr &&
      config_.observability.trace_sim_events) {
    // sim_event rows go to the trace file only; the span tracker has no use
    // for them and would just count them.
    sim_tracer =
        std::make_unique<obs::SimEventTracer>(*config_.observability.trace);
    simulator_.add_observer(sim_tracer.get());
  }
  std::unique_ptr<obs::DispatchStats> dispatch_stats;
  if (config_.observability.dispatch_metrics &&
      config_.observability.metrics != nullptr) {
    dispatch_stats = std::make_unique<obs::DispatchStats>();
    simulator_.add_observer(dispatch_stats.get());
  }

  // Watchdogs, the flight recorder, and the resource probe all ride the
  // sampling tick; give them a default cadence when the caller enabled any
  // of them without choosing one.
  const bool wants_health = config_.observability.health_rules != nullptr &&
                            !config_.observability.health_rules->empty();
  sim::Time sample_period = config_.observability.sample_period;
  if ((wants_health || config_.observability.recorder != nullptr ||
       config_.observability.resource != nullptr ||
       config_.observability.sample_window > sim::Time::zero()) &&
      sample_period <= sim::Time::zero())
    sample_period = sim::Time::seconds(10);

  // Windowed streaming mode: flush each window of samples to the caller's
  // stream as sim time crosses its boundary, retaining only a bounded tail.
  if (config_.observability.sample_window > sim::Time::zero()) {
    assert(config_.observability.samples_stream != nullptr &&
           "sample_window requires samples_stream");
    obs::TrafficSampler::WindowOptions window_options;
    window_options.window = config_.observability.sample_window;
    window_options.out = config_.observability.samples_stream;
    window_options.retain = config_.observability.sample_retain;
    sampler_.enable_windowing(window_options);
  }
  if (wants_health) {
    obs::HealthMonitor::Options health_options;
    health_options.trace = trace_dest_;
    health_options.metrics = config_.observability.metrics;
    health_ = std::make_unique<obs::HealthMonitor>(
        *config_.observability.health_rules, health_options);
    if (obs::FlightRecorder* recorder = config_.observability.recorder) {
      health_->set_critical_hook(
          [recorder](sim::Time t, const obs::HealthRule& rule, double) {
            recorder->trigger(t, "health-" + rule.display_name());
          });
    }
  }
  if (sample_period > sim::Time::zero()) {
    sampling_active_ = true;
    sim::schedule_periodic(
        simulator_, sample_period,
        [this] {
          if (!sampling_active_) return false;
          collect_sample();
          return true;
        },
        "obs.sample");
  }

  // The heartbeat is its own chain so its cadence is independent of the
  // sampling one; like the sampler tick it reads but never mutates, so
  // arming it cannot change the simulated trajectory.
  if (obs::ProgressMeter* meter = config_.observability.progress) {
    sim::Time progress_period = config_.observability.progress_period;
    if (progress_period <= sim::Time::zero())
      progress_period = sim::Time::seconds(30);
    progress_active_ = true;
    sim::schedule_periodic(
        simulator_, progress_period,
        [this, meter] {
          if (!progress_active_) return false;
          obs::ProgressMeter::State state;
          state.now = simulator_.now();
          state.events_executed = simulator_.events_executed();
          for (const auto& peer : peers_)
            if (peer->alive()) ++state.peers_alive;
          state.queue_depth = simulator_.pending_events();
          state.rss_bytes = obs::ResourceProbe::current_rss_bytes();
          meter->tick(state);
          return true;
        },
        "obs.progress");
  }

  simulator_.run_until(config_.duration);
  sampling_active_ = false;
  progress_active_ = false;
  sampler_.flush();  // windowed mode: write out the still-open window

  if (config_.observability.profiler != nullptr)
    simulator_.remove_observer(config_.observability.profiler);
  if (sim_tracer != nullptr) simulator_.remove_observer(sim_tracer.get());
  if (dispatch_stats != nullptr) {
    simulator_.remove_observer(dispatch_stats.get());
    dispatch_stats->export_metrics(*config_.observability.metrics);
  }

  ExperimentResult result;
  result.traffic = traffic_;
  result.samples =
      sampler_.windowed() ? sampler_.tail_samples() : sampler_.samples();
  result.samples_flushed = sampler_.samples_flushed();

  for (const auto& probe : probes_) {
    ProbeResult pr;
    pr.label = probe.label;
    pr.ip = probe.peer->ip();
    pr.channel = probe.channel;
    pr.category = probe.peer->identity().category;
    pr.counters = probe.peer->counters();
    pr.analysis = capture::analyze_trace(*probe.trace, asn_db_,
                                         probe.peer->ip(), tracker_ips_);
    if (config_.keep_traces) pr.trace = probe.trace;
    result.probes.push_back(std::move(pr));
  }

  double continuity_acc = 0;
  std::uint64_t viewers = 0;
  for (const auto& peer : peers_) {
    if (peer->counters().chunks_played + peer->counters().chunks_missed > 0) {
      continuity_acc += peer->counters().continuity();
      ++viewers;
    }
  }
  result.swarm.peers_spawned = peers_.size();
  result.swarm.departures = departures_;
  result.swarm.avg_continuity =
      viewers == 0 ? 0.0 : continuity_acc / static_cast<double>(viewers);
  result.swarm.packets_delivered = network_.stats().packets_delivered;
  result.swarm.packets_dropped =
      network_.stats().uplink_drops + network_.stats().core_drops +
      network_.stats().downlink_drops + network_.stats().dead_destination_drops +
      network_.stats().blackout_drops + network_.stats().brownout_drops +
      network_.stats().degrade_drops;
  result.swarm.events_executed = simulator_.events_executed();

  if (fault_driver_ != nullptr) {
    result.fault_windows_applied = fault_driver_->windows_applied();
    result.fault_windows_reverted = fault_driver_->windows_reverted();
    result.fault_peers_crashed = fault_driver_->peers_crashed();
  }

  if (health_ != nullptr) result.health = health_->summary();
  if (config_.observability.recorder != nullptr)
    result.postmortem_dumps = config_.observability.recorder->dumps_written();

  if (const obs::SpanTracker* spans = config_.observability.spans) {
    result.lineage = spans->lineage();
    result.referral_share = spans->referral_share_series();
    result.critical_paths = spans->critical_paths();
  }

  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    SessionRecord rec = sessions_[i];
    if (!rec.completed) rec.left = simulator_.now();
    const auto& c = session_peers_[i]->counters();
    rec.bytes_downloaded = c.bytes_downloaded;
    rec.bytes_uploaded = c.bytes_uploaded;
    rec.continuity = c.continuity();
    result.sessions.push_back(rec);
  }

  aggregate_counters(result);
  export_metrics(result);
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  MultiChannelConfig multi;
  multi.channels.push_back(ChannelPlan{config.scenario, config.probes});
  multi.strategy = config.strategy;
  multi.peer_config = config.peer_config;
  multi.locality_aware_trackers = config.locality_aware_trackers;
  multi.keep_traces = config.keep_traces;
  multi.probe_join_at = config.probe_join_at;
  multi.duration = config.scenario.duration;
  multi.seed = config.scenario.seed;
  multi.interconnects = config.interconnects;
  multi.observability = config.observability;
  multi.faults = config.faults;
  Runner runner(multi);
  return runner.run();
}

ExperimentResult run_multi_channel(const MultiChannelConfig& config) {
  Runner runner(config);
  return runner.run();
}

}  // namespace ppsim::core
