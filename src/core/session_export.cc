#include "core/session_export.h"

#include <fstream>
#include <ostream>
#include <sstream>

namespace ppsim::core {

namespace {
constexpr const char* kHeader =
    "channel,category,nat,joined_s,left_s,completed,duration_s,bytes_down,"
    "bytes_up,continuity";
}

std::size_t write_sessions_csv(std::ostream& os,
                               const std::vector<SessionRecord>& sessions) {
  os << kHeader << '\n';
  for (const auto& s : sessions) {
    os << s.channel << ',' << static_cast<int>(s.category) << ','
       << (s.behind_nat ? 1 : 0) << ',' << s.joined.as_seconds() << ','
       << s.left.as_seconds() << ',' << (s.completed ? 1 : 0) << ','
       << s.duration_seconds() << ',' << s.bytes_downloaded << ','
       << s.bytes_uploaded << ',' << s.continuity << '\n';
  }
  return sessions.size();
}

bool write_sessions_csv_file(const std::string& path,
                             const std::vector<SessionRecord>& sessions) {
  std::ofstream out(path);
  if (!out) return false;
  write_sessions_csv(out, sessions);
  return static_cast<bool>(out);
}

std::vector<SessionRecord> read_sessions_csv(std::istream& is,
                                             std::size_t* dropped) {
  std::vector<SessionRecord> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line == kHeader) continue;
    std::istringstream in(line);
    SessionRecord rec;
    char comma;
    unsigned channel = 0, category = 0, nat = 0, completed = 0;
    double joined = 0, left = 0, duration = 0, continuity = 0;
    std::uint64_t down = 0, up = 0;
    in >> channel >> comma >> category >> comma >> nat >> comma >> joined >>
        comma >> left >> comma >> completed >> comma >> duration >> comma >>
        down >> comma >> up >> comma >> continuity;
    if (in.fail() || category >= net::kNumIspCategories) {
      ++bad;
      continue;
    }
    rec.channel = channel;
    rec.category = static_cast<net::IspCategory>(category);
    rec.behind_nat = nat != 0;
    rec.joined = sim::Time::from_seconds(joined);
    rec.left = sim::Time::from_seconds(left);
    rec.completed = completed != 0;
    rec.bytes_downloaded = down;
    rec.bytes_uploaded = up;
    rec.continuity = continuity;
    out.push_back(rec);
  }
  if (dropped) *dropped = bad;
  return out;
}

}  // namespace ppsim::core
