#pragma once

#include <memory>

#include "net/asn_db.h"
#include "proto/selection.h"

namespace ppsim::baseline {

/// BitTorrent-style membership: the client never gossips with neighbors and
/// relies exclusively on tracker samples. Candidate picks stay uniformly
/// random. The paper argues (Sections 1 and 4) that this is exactly the
/// regime where topology-blind selection wastes cross-ISP bandwidth; this
/// policy lets the claim be measured under identical network conditions.
class TrackerOnlyPolicy final : public proto::SelectionPolicy {
 public:
  bool use_neighbor_referral() const override { return false; }
  bool latency_optimize() const override { return false; }
  std::vector<net::IpAddress> choose(
      std::span<const net::IpAddress> fresh,
      std::span<const net::IpAddress> pool,
      const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
      sim::Rng& rng) override;
};

/// Oracle ISP-biased selection in the spirit of Bindal et al. / P4P: the
/// client magically knows every candidate's ISP (via the ASN database —
/// infrastructure support PPLive does *not* have) and prefers same-ISP
/// candidates with probability `bias`. Upper-bounds what explicit topology
/// awareness could buy.
class IspBiasedPolicy final : public proto::SelectionPolicy {
 public:
  IspBiasedPolicy(const net::AsnDatabase& db, net::IspCategory own_category,
                  double bias = 0.9)
      : db_(db), own_category_(own_category), bias_(bias) {}

  std::vector<net::IpAddress> choose(
      std::span<const net::IpAddress> fresh,
      std::span<const net::IpAddress> pool,
      const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
      sim::Rng& rng) override;

 private:
  const net::AsnDatabase& db_;
  net::IspCategory own_category_;
  double bias_;
};

/// Ablation of the connect-on-arrival mechanism: referral gossip stays on,
/// but candidates are only drawn (uniformly) on the periodic top-up tick,
/// so response-time differences can no longer decide who becomes a
/// neighbor. If the paper's explanation is right, locality should collapse
/// toward the channel's population mix under this policy.
class NoRushPolicy final : public proto::SelectionPolicy {
 public:
  bool connect_on_arrival() const override { return false; }
  bool latency_optimize() const override { return false; }
  std::vector<net::IpAddress> choose(
      std::span<const net::IpAddress> fresh,
      std::span<const net::IpAddress> pool,
      const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
      sim::Rng& rng) override;
};

/// Named strategy set used by the ablation bench and examples.
enum class Strategy {
  kPplive,       // ReferralSelection (the measured behaviour)
  kTrackerOnly,  // BitTorrent-style
  kIspBiased,    // oracle locality
  kNoRush,       // referral without connect-on-arrival
};

std::string_view to_string(Strategy s);

/// Factory; `db`/`category` are only used by kIspBiased.
std::unique_ptr<proto::SelectionPolicy> make_policy(
    Strategy s, const net::AsnDatabase* db = nullptr,
    net::IspCategory category = net::IspCategory::kForeign);

}  // namespace ppsim::baseline
