#include "baseline/policies.h"

#include <algorithm>

namespace ppsim::baseline {

std::vector<net::IpAddress> TrackerOnlyPolicy::choose(
    std::span<const net::IpAddress> fresh,
    std::span<const net::IpAddress> pool,
    const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
    sim::Rng& rng) {
  std::vector<net::IpAddress> out;
  proto::sample_eligible(fresh, excluded, want, rng, out);
  proto::sample_eligible(pool, excluded, want, rng, out);
  return out;
}

std::vector<net::IpAddress> IspBiasedPolicy::choose(
    std::span<const net::IpAddress> fresh,
    std::span<const net::IpAddress> pool,
    const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
    sim::Rng& rng) {
  // Partition the union of fresh+pool into same-ISP and other.
  std::vector<net::IpAddress> same, other;
  auto consider = [&](std::span<const net::IpAddress> span) {
    for (const auto& ip : span) {
      if (excluded.contains(ip)) continue;
      if (db_.category_or_foreign(ip) == own_category_)
        same.push_back(ip);
      else
        other.push_back(ip);
    }
  };
  consider(fresh);
  consider(pool);

  std::vector<net::IpAddress> out;
  const std::unordered_set<net::IpAddress> none;
  while (out.size() < want && (!same.empty() || !other.empty())) {
    const bool pick_same =
        !same.empty() && (other.empty() || rng.chance(bias_));
    auto& bucket = pick_same ? same : other;
    if (bucket.empty()) break;
    const std::size_t idx =
        static_cast<std::size_t>(rng.next_below(bucket.size()));
    const net::IpAddress ip = bucket[idx];
    bucket[idx] = bucket.back();
    bucket.pop_back();
    if (std::find(out.begin(), out.end(), ip) == out.end()) out.push_back(ip);
  }
  return out;
}

std::vector<net::IpAddress> NoRushPolicy::choose(
    std::span<const net::IpAddress> fresh,
    std::span<const net::IpAddress> pool,
    const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
    sim::Rng& rng) {
  (void)fresh;  // arrival-time information is deliberately ignored
  std::vector<net::IpAddress> out;
  proto::sample_eligible(pool, excluded, want, rng, out);
  return out;
}

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::kPplive:
      return "pplive-referral";
    case Strategy::kTrackerOnly:
      return "tracker-only";
    case Strategy::kIspBiased:
      return "isp-biased-oracle";
    case Strategy::kNoRush:
      return "no-rush-referral";
  }
  return "?";
}

std::unique_ptr<proto::SelectionPolicy> make_policy(Strategy s,
                                                    const net::AsnDatabase* db,
                                                    net::IspCategory category) {
  switch (s) {
    case Strategy::kPplive:
      return proto::make_default_policy();
    case Strategy::kTrackerOnly:
      return std::make_unique<TrackerOnlyPolicy>();
    case Strategy::kIspBiased:
      if (db == nullptr) return proto::make_default_policy();
      return std::make_unique<IspBiasedPolicy>(*db, category);
    case Strategy::kNoRush:
      return std::make_unique<NoRushPolicy>();
  }
  return proto::make_default_policy();
}

}  // namespace ppsim::baseline
