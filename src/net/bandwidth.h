#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/time.h"

namespace ppsim::net {

/// Access technology classes seen in the paper's deployment: residential
/// ADSL in China (the TELE probe used ADSL), campus Ethernet (CERNET and
/// Mason hosts), cable for foreign residential users, and datacenter links
/// for PPLive's bootstrap/tracker servers and channel sources.
enum class AccessClass : std::uint8_t {
  kAdsl = 0,
  kCable = 1,
  kCampus = 2,
  kDatacenter = 3,
  /// Business fiber / internet-café uplinks (2008 China): fast LAN behind a
  /// shared multi-megabit uplink — strong servers, but not bottomless.
  kFiber = 4,
};

/// Up/down capacities of one host's access link.
struct AccessProfile {
  double down_bps = 4e6;
  double up_bps = 512e3;

  /// Samples a concrete profile for the class, with realistic spread
  /// (e.g. ADSL 1-8 Mbps down / 384-768 kbps up).
  static AccessProfile sample(AccessClass cls, sim::Rng& rng);
};

/// FIFO serialization queue for one direction of an access link.
///
/// This is where load-dependent delay comes from: a peer uploading to many
/// neighbors serializes replies one after another, so its response time
/// grows with load — the effect behind the popular-channel latency inflation
/// in Figure 7(a) and Table 1. Packets that would wait longer than
/// `max_backlog` are tail-dropped.
class LinkQueue {
 public:
  LinkQueue() = default;
  LinkQueue(double bps, sim::Time max_backlog)
      : bps_(bps), max_backlog_(max_backlog) {}

  /// Attempts to enqueue `bytes` at time `now`. On success returns the time
  /// the last bit leaves the link; on overflow returns an unset optional
  /// (packet dropped).
  struct Admission {
    bool admitted = false;
    sim::Time departure;  // valid iff admitted
  };
  Admission enqueue(sim::Time now, std::uint64_t bytes);

  /// Current backlog if a packet were enqueued at `now`.
  sim::Time backlog(sim::Time now) const;

  double bps() const { return bps_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t drops() const { return drops_; }

 private:
  double bps_ = 1e6;
  sim::Time max_backlog_ = sim::Time::seconds(2);
  sim::Time busy_until_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t drops_ = 0;
};

/// Both directions of a host's access link.
class AccessLink {
 public:
  AccessLink() = default;
  AccessLink(const AccessProfile& profile, sim::Time max_backlog)
      : up_(profile.up_bps, max_backlog),
        down_(profile.down_bps, max_backlog) {}

  LinkQueue& up() { return up_; }
  LinkQueue& down() { return down_; }
  const LinkQueue& up() const { return up_; }
  const LinkQueue& down() const { return down_; }

 private:
  LinkQueue up_;
  LinkQueue down_;
};

}  // namespace ppsim::net
