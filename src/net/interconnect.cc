#include "net/interconnect.h"

#include <algorithm>

namespace ppsim::net {

std::size_t InterconnectFabric::pair_index(IspCategory a, IspCategory b) {
  auto x = static_cast<std::size_t>(a);
  auto y = static_cast<std::size_t>(b);
  if (x > y) std::swap(x, y);
  return x * kNumIspCategories + y;
}

InterconnectFabric::InterconnectFabric(const InterconnectConfig& config) {
  auto rate_for = [&](IspCategory a, IspCategory b) {
    for (const auto& o : config.overrides) {
      if ((o.a == a && o.b == b) || (o.a == b && o.b == a)) return o.bps;
    }
    return config.default_bps;
  };
  for (auto a : kAllIspCategories) {
    for (auto b : kAllIspCategories) {
      if (static_cast<int>(a) >= static_cast<int>(b)) continue;
      const double bps = rate_for(a, b);
      if (bps > 0) {
        pipes_[pair_index(a, b)].emplace(bps, config.max_backlog);
      }
    }
  }
}

LinkQueue::Admission InterconnectFabric::cross(IspCategory a, IspCategory b,
                                               sim::Time at,
                                               std::uint64_t bytes) {
  if (a == b) return {true, at};
  auto& pipe = pipes_[pair_index(a, b)];
  if (!pipe.has_value()) return {true, at};
  ++crossings_;
  auto admission = pipe->enqueue(at, bytes);
  if (!admission.admitted) ++drops_;
  return admission;
}

std::uint64_t InterconnectFabric::pair_bytes(IspCategory a,
                                             IspCategory b) const {
  const auto& pipe = pipes_[pair_index(a, b)];
  return pipe.has_value() ? pipe->bytes_sent() : 0;
}

}  // namespace ppsim::net
