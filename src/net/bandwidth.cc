#include "net/bandwidth.h"

#include <algorithm>

namespace ppsim::net {

AccessProfile AccessProfile::sample(AccessClass cls, sim::Rng& rng) {
  switch (cls) {
    case AccessClass::kAdsl:
      return AccessProfile{rng.uniform(1e6, 8e6), rng.uniform(384e3, 768e3)};
    case AccessClass::kCable:
      return AccessProfile{rng.uniform(4e6, 16e6), rng.uniform(512e3, 2e6)};
    case AccessClass::kCampus:
      return AccessProfile{rng.uniform(10e6, 100e6), rng.uniform(10e6, 100e6)};
    case AccessClass::kDatacenter:
      return AccessProfile{1e9, 1e9};
    case AccessClass::kFiber:
      return AccessProfile{rng.uniform(10e6, 20e6), rng.uniform(2e6, 6e6)};
  }
  return {};
}

LinkQueue::Admission LinkQueue::enqueue(sim::Time now, std::uint64_t bytes) {
  const sim::Time wait = backlog(now);
  if (wait > max_backlog_) {
    ++drops_;
    return {};
  }
  const double seconds = static_cast<double>(bytes) * 8.0 / bps_;
  const sim::Time serialization = sim::Time::from_seconds(seconds);
  const sim::Time start = std::max(now, busy_until_);
  busy_until_ = start + serialization;
  bytes_sent_ += bytes;
  return {true, busy_until_};
}

sim::Time LinkQueue::backlog(sim::Time now) const {
  return busy_until_ > now ? busy_until_ - now : sim::Time::zero();
}

}  // namespace ppsim::net
