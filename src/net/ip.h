#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <optional>
#include <string>

namespace ppsim::net {

/// IPv4 address as a host-order 32-bit integer with dotted-quad I/O.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t v) : v_(v) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr bool is_unspecified() const { return v_ == 0; }

  constexpr auto operator<=>(const IpAddress&) const = default;

  std::string to_string() const;

  /// Parses "a.b.c.d"; returns nullopt on malformed input.
  static std::optional<IpAddress> parse(const std::string& s);

 private:
  std::uint32_t v_ = 0;
};

/// CIDR prefix, e.g. 61.128.0.0/10.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// The network address is masked down to the prefix length.
  constexpr Prefix(IpAddress network, int length)
      : network_(IpAddress(length == 0 ? 0 : (network.value() & mask(length)))),
        length_(length) {}

  constexpr IpAddress network() const { return network_; }
  constexpr int length() const { return length_; }

  constexpr bool contains(IpAddress ip) const {
    if (length_ == 0) return true;
    return (ip.value() & mask(length_)) == network_.value();
  }

  /// Number of addresses covered (2^(32-len)); capped for len 0.
  constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  constexpr auto operator<=>(const Prefix&) const = default;

  std::string to_string() const;

  static constexpr std::uint32_t mask(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  IpAddress network_;
  int length_ = 0;
};

}  // namespace ppsim::net

template <>
struct std::hash<ppsim::net::IpAddress> {
  std::size_t operator()(const ppsim::net::IpAddress& ip) const noexcept {
    // Finalizing mix keeps sequentially-allocated addresses well spread.
    std::uint64_t x = ip.value();
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
