#pragma once

#include <cstdint>

#include "net/ip.h"
#include "net/isp.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ppsim::net {

/// What the latency model needs to know about a packet endpoint.
struct Endpoint {
  IpAddress ip;
  IspId isp;
  IspCategory category = IspCategory::kForeign;
};

/// Tunable parameters for path latency and loss. All RTTs are medians of
/// the propagation component; per-pair and per-packet jitter is layered on
/// top. Defaults are calibrated so the *orderings* the paper measures hold:
/// intra-ISP < China cross-ISP < transoceanic, with magnitudes shaped like
/// 2008-era paths (TELE<->CNC interconnects were notoriously congested).
struct LatencyConfig {
  sim::Time intra_isp_rtt = sim::Time::millis(18);
  sim::Time intra_category_rtt = sim::Time::millis(35);   // same bucket, other AS
  /// TELE <-> CNC crossed the congested national interconnect; 2008-era
  /// measurements put it well above 100 ms at peak.
  sim::Time china_cross_isp_rtt = sim::Time::millis(140);
  /// CERNET's links to the commercial backbones were even worse (academic
  /// network, thin commercial peering).
  sim::Time cer_cross_rtt = sim::Time::millis(160);
  sim::Time transoceanic_rtt = sim::Time::millis(330);    // China <-> Foreign (2008 peak-hour international transit)
  sim::Time foreign_cross_rtt = sim::Time::millis(75);    // Foreign <-> Foreign

  /// Log-space sigma of the stable per-pair multiplier (path diversity).
  double pair_sigma = 0.25;
  /// Log-space sigma of the per-packet multiplier (queueing noise in the
  /// core; access-link queueing is modeled separately by AccessLink).
  double packet_sigma = 0.08;

  double intra_isp_loss = 0.001;
  double china_cross_loss = 0.006;
  double transoceanic_loss = 0.02;
  double foreign_cross_loss = 0.008;

  /// Salt folded into the per-pair hash so distinct runs can re-roll path
  /// multipliers while staying deterministic for a given seed.
  std::uint64_t pair_salt = 0x70706C6976ULL;  // "ppliv"
};

/// Computes propagation delay and loss probability between endpoints.
///
/// The per-pair multiplier is derived from a hash of the two IPs, so the
/// same pair always sees the same path quality regardless of packet order —
/// this is what makes "the RTT to that peer" a stable, measurable property
/// (Figures 15-18 correlate request counts against exactly this quantity).
class LatencyModel {
 public:
  explicit LatencyModel(LatencyConfig config = {});

  const LatencyConfig& config() const { return config_; }

  /// Median round-trip propagation between the two endpoint classes,
  /// before pair/packet jitter.
  sim::Time base_rtt(const Endpoint& a, const Endpoint& b) const;

  /// Stable per-pair multiplier in (0, inf), median 1. Symmetric in (a, b).
  double pair_factor(IpAddress a, IpAddress b) const;

  /// Ground-truth round-trip propagation for a pair including the stable
  /// pair factor (no per-packet noise). Used by tests and by the analysis
  /// section when validating measured-RTT estimates.
  sim::Time pair_rtt(const Endpoint& a, const Endpoint& b) const;

  /// One direction of a single packet: pair_rtt/2 times per-packet jitter.
  sim::Time sample_one_way(const Endpoint& a, const Endpoint& b,
                           sim::Rng& rng) const;

  /// Probability this packet is dropped in the core.
  double loss_probability(const Endpoint& a, const Endpoint& b) const;

 private:
  LatencyConfig config_;
};

}  // namespace ppsim::net
