#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/isp.h"

namespace ppsim::net {

/// Hands out host addresses from each ISP's prefixes.
///
/// Addresses within a prefix are allocated with a stride so consecutive
/// peers of the same ISP land in different /24s (as real subscribers do),
/// while remaining deterministic. Network (.0) and broadcast (.255) style
/// endings are skipped for cosmetic realism.
class PrefixAllocator {
 public:
  explicit PrefixAllocator(const IspRegistry& registry);

  /// Allocates the next free address for the ISP. Throws std::runtime_error
  /// when the ISP's address space is exhausted (does not happen at
  /// simulation scales, but the invariant is enforced).
  IpAddress allocate(IspId isp);

  std::uint64_t allocated(IspId isp) const;

 private:
  struct IspState {
    std::vector<Prefix> prefixes;
    std::size_t prefix_idx = 0;
    std::uint64_t offset = 0;  // per-prefix rotating offset
    std::uint64_t count = 0;
  };

  IpAddress next_candidate(IspState& st);

  std::vector<IspState> states_;
};

}  // namespace ppsim::net
