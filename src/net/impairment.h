#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <optional>

#include "net/ip.h"
#include "net/isp.h"
#include "sim/time.h"

namespace ppsim::net {

/// Runtime-mutable overlay of scheduled network impairments, consulted by
/// Network<> on its send path. The overlay itself is policy-free state; the
/// fault driver (src/faults) mutates it at fault-window boundaries on the
/// simulator clock.
///
/// Three impairment families, matching the fault plan's network-side kinds:
///
///  - *category blackouts*: every packet to or from a blacked-out ISP
///    category vanishes in the access network (regional outage);
///  - *pair degradation*: packets between two categories suffer extra loss
///    and extra one-way delay (cross-ISP link congestion / throttling);
///  - *uplink brownouts*: a specific host's uplink drops a fraction of its
///    packets (flapping ADSL).
///
/// Hot-path contract: when nothing is impaired, active() is false and the
/// transport pays exactly one branch per send — the overlay must never draw
/// randomness or allocate on lookup. All mutation is O(small) and keeps the
/// `active_` flag in sync so send() can skip the detailed checks wholesale.
class ImpairmentOverlay {
 public:
  struct PairDegradation {
    double extra_loss = 0.0;                     // added drop probability
    sim::Time extra_one_way = sim::Time::zero();  // added propagation delay
  };

  /// True while any impairment is installed; the transport's one-branch
  /// fast-path check.
  bool active() const { return active_; }

  // --- regional blackouts ---
  void set_category_blocked(IspCategory c, bool blocked);
  bool category_blocked(IspCategory c) const {
    return blocked_[static_cast<std::size_t>(c)];
  }

  // --- cross-category link degradation (unordered pair) ---
  void set_pair_degradation(IspCategory a, IspCategory b, PairDegradation d);
  void clear_pair_degradation(IspCategory a, IspCategory b);
  /// nullptr when the pair is unimpaired.
  const PairDegradation* pair_degradation(IspCategory a, IspCategory b) const {
    const auto& slot = pairs_[pair_index(a, b)];
    return slot.has_value() ? &*slot : nullptr;
  }

  // --- per-host uplink brownouts ---
  /// loss <= 0 clears the entry.
  void set_uplink_loss(IpAddress ip, double loss);
  void clear_uplink_loss(IpAddress ip);
  /// 0.0 when the host's uplink is healthy.
  double uplink_loss(IpAddress ip) const {
    auto it = uplink_loss_.find(ip);
    return it == uplink_loss_.end() ? 0.0 : it->second;
  }

  /// Reverts every installed impairment (end of a fault schedule).
  void clear_all();

 private:
  static std::size_t pair_index(IspCategory a, IspCategory b);
  void recompute_active();

  std::array<bool, kNumIspCategories> blocked_{};
  std::array<std::optional<PairDegradation>,
             kNumIspCategories * kNumIspCategories>
      pairs_{};
  // Ordered map: iteration order (tests, debugging) must not depend on hash
  // seeds — this type sits inside the linted determinism core.
  std::map<IpAddress, double> uplink_loss_;
  bool active_ = false;
};

}  // namespace ppsim::net
