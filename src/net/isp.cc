#include "net/isp.h"

#include <cassert>

namespace ppsim::net {

std::string_view to_string(IspCategory c) {
  switch (c) {
    case IspCategory::kTele:
      return "TELE";
    case IspCategory::kCnc:
      return "CNC";
    case IspCategory::kCer:
      return "CER";
    case IspCategory::kOtherCn:
      return "OtherCN";
    case IspCategory::kForeign:
      return "Foreign";
  }
  return "?";
}

std::string_view to_string(ResponseGroup g) {
  switch (g) {
    case ResponseGroup::kTele:
      return "TELE";
    case ResponseGroup::kCnc:
      return "CNC";
    case ResponseGroup::kOther:
      return "OTHER";
  }
  return "?";
}

ResponseGroup response_group(IspCategory c) {
  switch (c) {
    case IspCategory::kTele:
      return ResponseGroup::kTele;
    case IspCategory::kCnc:
      return ResponseGroup::kCnc;
    default:
      return ResponseGroup::kOther;
  }
}

IspId IspRegistry::add(std::string as_name, std::uint32_t asn,
                       IspCategory category) {
  IspId id{static_cast<std::uint32_t>(isps_.size())};
  isps_.push_back(IspInfo{id, asn, std::move(as_name), category, {}});
  return id;
}

void IspRegistry::add_prefix(IspId id, Prefix p) {
  assert(id.index < isps_.size());
  isps_[id.index].prefixes.push_back(p);
}

const IspInfo& IspRegistry::info(IspId id) const {
  assert(id.index < isps_.size());
  return isps_[id.index];
}

std::vector<IspId> IspRegistry::in_category(IspCategory c) const {
  std::vector<IspId> out;
  for (const auto& isp : isps_)
    if (isp.category == c) out.push_back(isp.id);
  return out;
}

IspRegistry IspRegistry::standard_topology() {
  IspRegistry reg;

  // Backbone ASes for the three ISPs the paper instruments. ASNs and address
  // blocks are synthetic but shaped like the real allocations (ChinaTelecom
  // AS4134, ChinaNetcom AS4837, CERNET AS4538).
  IspId tele = reg.add("CHINANET-BACKBONE", 4134, IspCategory::kTele);
  reg.add_prefix(tele, Prefix(IpAddress(61, 128, 0, 0), 10));
  reg.add_prefix(tele, Prefix(IpAddress(116, 0, 0, 0), 10));
  reg.add_prefix(tele, Prefix(IpAddress(218, 0, 0, 0), 11));

  IspId cnc = reg.add("CNCGROUP-BACKBONE", 4837, IspCategory::kCnc);
  reg.add_prefix(cnc, Prefix(IpAddress(60, 0, 0, 0), 11));
  reg.add_prefix(cnc, Prefix(IpAddress(221, 192, 0, 0), 11));

  IspId cer = reg.add("CERNET-BACKBONE", 4538, IspCategory::kCer);
  reg.add_prefix(cer, Prefix(IpAddress(166, 111, 0, 0), 16));
  reg.add_prefix(cer, Prefix(IpAddress(202, 112, 0, 0), 13));

  // Smaller Chinese ISPs, reported as OtherCN.
  IspId unicom = reg.add("UNICOM-CN", 9800, IspCategory::kOtherCn);
  reg.add_prefix(unicom, Prefix(IpAddress(210, 13, 0, 0), 16));
  IspId crnet = reg.add("CRNET-CN", 9394, IspCategory::kOtherCn);
  reg.add_prefix(crnet, Prefix(IpAddress(218, 224, 0, 0), 13));
  IspId mobile = reg.add("CMNET-CN", 9808, IspCategory::kOtherCn);
  reg.add_prefix(mobile, Prefix(IpAddress(120, 192, 0, 0), 10));

  // Foreign ISPs across several regions; the Mason probe host lives in one
  // of these (a US university network).
  IspId mason = reg.add("US-UNIVERSITY-NET", 1747, IspCategory::kForeign);
  reg.add_prefix(mason, Prefix(IpAddress(129, 174, 0, 0), 16));
  IspId us_res = reg.add("US-RESIDENTIAL-NET", 7922, IspCategory::kForeign);
  reg.add_prefix(us_res, Prefix(IpAddress(24, 0, 0, 0), 12));
  IspId eu = reg.add("EU-BROADBAND-NET", 3320, IspCategory::kForeign);
  reg.add_prefix(eu, Prefix(IpAddress(84, 128, 0, 0), 10));
  IspId asia = reg.add("ASIA-PACIFIC-NET", 4713, IspCategory::kForeign);
  reg.add_prefix(asia, Prefix(IpAddress(219, 96, 0, 0), 11));

  return reg;
}

}  // namespace ppsim::net
