#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip.h"

namespace ppsim::net {

/// Reporting buckets used throughout the paper's figures.
///
/// TELE = ChinaTelecom, CNC = ChinaNetcom, CER = CERNET, OTHER_CN = smaller
/// Chinese ISPs (China Unicom, China Railway Internet, ...), FOREIGN = ISPs
/// outside China. Figures 7-10 and Table 1 additionally collapse
/// {CER, OTHER_CN, FOREIGN} into a single OTHER group.
enum class IspCategory : std::uint8_t {
  kTele = 0,
  kCnc = 1,
  kCer = 2,
  kOtherCn = 3,
  kForeign = 4,
};

inline constexpr std::size_t kNumIspCategories = 5;
inline constexpr std::array<IspCategory, kNumIspCategories> kAllIspCategories =
    {IspCategory::kTele, IspCategory::kCnc, IspCategory::kCer,
     IspCategory::kOtherCn, IspCategory::kForeign};

std::string_view to_string(IspCategory c);

/// Three-way grouping relative to an observer, as used in the response-time
/// analysis (Figures 7-10, Table 1): TELE peers, CNC peers, everyone else.
enum class ResponseGroup : std::uint8_t { kTele = 0, kCnc = 1, kOther = 2 };
inline constexpr std::size_t kNumResponseGroups = 3;

std::string_view to_string(ResponseGroup g);

ResponseGroup response_group(IspCategory c);

/// Identifier of a concrete autonomous system / ISP in the simulated
/// topology. Several ASes can map to the same reporting category (e.g. many
/// distinct foreign ISPs are all reported as FOREIGN).
struct IspId {
  std::uint32_t index = 0;
  constexpr auto operator<=>(const IspId&) const = default;
};

/// Static description of one simulated ISP.
struct IspInfo {
  IspId id;
  std::uint32_t asn = 0;          // autonomous system number
  std::string as_name;            // e.g. "CHINANET-BACKBONE"
  IspCategory category = IspCategory::kOtherCn;
  std::vector<Prefix> prefixes;   // address space owned by this ISP
};

/// Registry of all ISPs in a simulated topology. Owns the static metadata;
/// address allocation and ASN lookup are layered on top (PrefixAllocator,
/// AsnDatabase).
class IspRegistry {
 public:
  /// Adds an ISP; prefixes may be attached later via add_prefix.
  IspId add(std::string as_name, std::uint32_t asn, IspCategory category);

  void add_prefix(IspId id, Prefix p);

  const IspInfo& info(IspId id) const;
  std::size_t size() const { return isps_.size(); }
  const std::vector<IspInfo>& all() const { return isps_; }

  /// All ISPs in a given reporting category.
  std::vector<IspId> in_category(IspCategory c) const;

  /// Builds the default topology used by the experiments: one backbone AS
  /// for each of TELE / CNC / CER, a handful of smaller Chinese ISPs
  /// (OTHER_CN), and a set of foreign ISPs (FOREIGN) spanning several
  /// continents. Address space is carved from disjoint /8-/12 blocks.
  static IspRegistry standard_topology();

 private:
  std::vector<IspInfo> isps_;
};

}  // namespace ppsim::net
