#include "net/asn_db.h"

#include <cassert>

namespace ppsim::net {

struct AsnDatabase::Node {
  std::unique_ptr<Node> child[2];
  std::unique_ptr<AsnRecord> record;  // set iff a prefix terminates here
};

AsnDatabase::AsnDatabase() : root_(std::make_unique<Node>()) {}
AsnDatabase::~AsnDatabase() = default;
AsnDatabase::AsnDatabase(AsnDatabase&&) noexcept = default;
AsnDatabase& AsnDatabase::operator=(AsnDatabase&&) noexcept = default;

namespace {
// Extracts bit `i` (0 = most significant) of an address.
int bit_at(std::uint32_t v, int i) { return (v >> (31 - i)) & 1; }
}  // namespace

void AsnDatabase::insert(Prefix prefix, std::uint32_t asn, std::string as_name,
                         IspCategory category) {
  Node* node = root_.get();
  std::uint32_t addr = prefix.network().value();
  for (int i = 0; i < prefix.length(); ++i) {
    int b = bit_at(addr, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->record) ++prefix_count_;
  node->record = std::make_unique<AsnRecord>(
      AsnRecord{asn, std::move(as_name), category, prefix});
}

std::optional<AsnRecord> AsnDatabase::lookup(IpAddress ip) const {
  const Node* node = root_.get();
  const AsnRecord* best = node->record.get();
  std::uint32_t addr = ip.value();
  for (int i = 0; i < 32 && node; ++i) {
    node = node->child[bit_at(addr, i)].get();
    if (node && node->record) best = node->record.get();
  }
  if (!best) return std::nullopt;
  return *best;
}

IspCategory AsnDatabase::category_or_foreign(IpAddress ip) const {
  auto rec = lookup(ip);
  return rec ? rec->category : IspCategory::kForeign;
}

AsnDatabase AsnDatabase::from_registry(const IspRegistry& registry) {
  AsnDatabase db;
  for (const auto& isp : registry.all()) {
    for (const auto& prefix : isp.prefixes) {
      db.insert(prefix, isp.asn, isp.as_name, isp.category);
    }
  }
  return db;
}

}  // namespace ppsim::net
