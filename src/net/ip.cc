#include "net/ip.h"

#include <cstdio>

namespace ppsim::net {

std::string IpAddress::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v_ >> 24) & 0xFF,
                (v_ >> 16) & 0xFF, (v_ >> 8) & 0xFF, v_ & 0xFF);
  return buf;
}

std::optional<IpAddress> IpAddress::parse(const std::string& s) {
  unsigned a, b, c, d;
  char trailing;
  int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (n != 4) return std::nullopt;
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return IpAddress(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                   static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace ppsim::net
