#include "net/impairment.h"

#include <algorithm>

namespace ppsim::net {

std::size_t ImpairmentOverlay::pair_index(IspCategory a, IspCategory b) {
  auto ai = static_cast<std::size_t>(a);
  auto bi = static_cast<std::size_t>(b);
  if (ai > bi) std::swap(ai, bi);
  return ai * kNumIspCategories + bi;
}

void ImpairmentOverlay::set_category_blocked(IspCategory c, bool blocked) {
  blocked_[static_cast<std::size_t>(c)] = blocked;
  recompute_active();
}

void ImpairmentOverlay::set_pair_degradation(IspCategory a, IspCategory b,
                                             PairDegradation d) {
  pairs_[pair_index(a, b)] = d;
  recompute_active();
}

void ImpairmentOverlay::clear_pair_degradation(IspCategory a, IspCategory b) {
  pairs_[pair_index(a, b)].reset();
  recompute_active();
}

void ImpairmentOverlay::set_uplink_loss(IpAddress ip, double loss) {
  if (loss <= 0.0) {
    uplink_loss_.erase(ip);
  } else {
    uplink_loss_[ip] = std::min(loss, 1.0);
  }
  recompute_active();
}

void ImpairmentOverlay::clear_uplink_loss(IpAddress ip) {
  uplink_loss_.erase(ip);
  recompute_active();
}

void ImpairmentOverlay::clear_all() {
  blocked_.fill(false);
  for (auto& slot : pairs_) slot.reset();
  uplink_loss_.clear();
  active_ = false;
}

void ImpairmentOverlay::recompute_active() {
  active_ = !uplink_loss_.empty() ||
            std::any_of(blocked_.begin(), blocked_.end(),
                        [](bool b) { return b; }) ||
            std::any_of(pairs_.begin(), pairs_.end(),
                        [](const auto& slot) { return slot.has_value(); });
}

}  // namespace ppsim::net
