#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.h"
#include "net/isp.h"

namespace ppsim::net {

/// Result of an IP-to-ASN lookup, mirroring what the Team Cymru whois
/// service returns: the origin ASN, its name, and (our addition) the
/// reporting category the analysis maps it to.
struct AsnRecord {
  std::uint32_t asn = 0;
  std::string as_name;
  IspCategory category = IspCategory::kForeign;
  Prefix matched_prefix;
};

/// Longest-prefix-match IP-to-ASN database.
///
/// This stands in for the Team Cymru IP→ASN mapping service the paper uses
/// to attribute every observed peer IP to an ISP. Implemented as a binary
/// (per-bit) trie: insert is O(prefix length), lookup walks at most 32 nodes
/// and remembers the deepest node carrying a record.
class AsnDatabase {
 public:
  AsnDatabase();
  ~AsnDatabase();
  AsnDatabase(AsnDatabase&&) noexcept;
  AsnDatabase& operator=(AsnDatabase&&) noexcept;
  AsnDatabase(const AsnDatabase&) = delete;
  AsnDatabase& operator=(const AsnDatabase&) = delete;

  /// Registers a prefix as originated by the given AS. More-specific
  /// prefixes shadow less-specific ones, as in BGP.
  void insert(Prefix prefix, std::uint32_t asn, std::string as_name,
              IspCategory category);

  /// Longest-prefix match; nullopt when no covering prefix exists
  /// (the paper's equivalent of an unmapped IP).
  std::optional<AsnRecord> lookup(IpAddress ip) const;

  /// Convenience: category lookup with FOREIGN as the unmapped fallback,
  /// matching how the paper buckets unknown addresses.
  IspCategory category_or_foreign(IpAddress ip) const;

  std::size_t prefix_count() const { return prefix_count_; }

  /// Builds a database covering every prefix in the registry.
  static AsnDatabase from_registry(const IspRegistry& registry);

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t prefix_count_ = 0;
};

}  // namespace ppsim::net
