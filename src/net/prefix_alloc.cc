#include "net/prefix_alloc.h"

#include <algorithm>
#include <cassert>

namespace ppsim::net {

namespace {
// Stride through the host space so consecutive allocations spread across
// /24s: advance by 256 + 1 addresses each time, wrapping within the prefix.
constexpr std::uint64_t kStride = 257;
}  // namespace

PrefixAllocator::PrefixAllocator(const IspRegistry& registry) {
  states_.resize(registry.size());
  for (const auto& isp : registry.all()) {
    states_[isp.id.index].prefixes = isp.prefixes;
  }
}

IpAddress PrefixAllocator::next_candidate(IspState& st) {
  assert(!st.prefixes.empty());
  const Prefix& p = st.prefixes[st.prefix_idx];
  const std::uint64_t space = p.size();
  IpAddress ip(p.network().value() +
               static_cast<std::uint32_t>(st.offset % space));
  // Round-robin across the ISP's prefixes, striding within each.
  st.prefix_idx = (st.prefix_idx + 1) % st.prefixes.size();
  if (st.prefix_idx == 0) st.offset += kStride;
  return ip;
}

IpAddress PrefixAllocator::allocate(IspId isp) {
  assert(isp.index < states_.size());
  IspState& st = states_[isp.index];
  if (st.prefixes.empty())
    throw std::runtime_error("ISP has no prefixes to allocate from");

  // Uniqueness is guaranteed per prefix for one full stride cycle, so the
  // safe capacity is bounded by the smallest prefix (round-robin gives each
  // prefix an equal share of allocations).
  std::uint64_t min_size = st.prefixes.front().size();
  for (const auto& p : st.prefixes) min_size = std::min(min_size, p.size());
  if (st.count >= min_size * st.prefixes.size() / 2)
    throw std::runtime_error("ISP address space exhausted");

  for (;;) {
    IpAddress ip = next_candidate(st);
    const std::uint8_t last = static_cast<std::uint8_t>(ip.value() & 0xFF);
    if (last == 0 || last == 255) continue;  // skip network/broadcast-alikes
    ++st.count;
    return ip;
  }
}

std::uint64_t PrefixAllocator::allocated(IspId isp) const {
  assert(isp.index < states_.size());
  return states_[isp.index].count;
}

}  // namespace ppsim::net
