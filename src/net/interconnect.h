#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/bandwidth.h"
#include "net/isp.h"
#include "sim/time.h"

namespace ppsim::net {

/// Configuration of inter-ISP bottleneck links.
///
/// The base latency model *parameterizes* cross-ISP slowness (fixed RTT
/// penalties). This fabric makes it *emergent* instead: all traffic
/// crossing a category boundary shares a finite interconnect pipe per
/// category pair, so cross-ISP delay and loss grow with cross-ISP load —
/// the dynamic that made 2008 TELE<->CNC paths collapse at peak hours.
/// Disabled by default (default_bps = 0 means unlimited) so the calibrated
/// reproduction is unaffected; the interconnect ablation bench turns it on.
struct InterconnectConfig {
  /// Capacity of each cross-category pipe; 0 = unlimited (disabled).
  double default_bps = 0;
  /// Packets that would wait longer than this are dropped at the pipe.
  sim::Time max_backlog = sim::Time::millis(800);

  struct PairRate {
    IspCategory a;
    IspCategory b;
    double bps;
  };
  /// Per-pair capacity overrides (order of a/b irrelevant).
  std::vector<PairRate> overrides;
};

/// The set of inter-category bottleneck queues. One queue per unordered
/// category pair, shared by every flow crossing that boundary.
class InterconnectFabric {
 public:
  explicit InterconnectFabric(const InterconnectConfig& config);

  /// Passes `bytes` through the a<->b pipe at time `at`. For same-category
  /// or unlimited pairs, admits instantly with departure == at.
  LinkQueue::Admission cross(IspCategory a, IspCategory b, sim::Time at,
                             std::uint64_t bytes);

  std::uint64_t drops() const { return drops_; }
  std::uint64_t crossings() const { return crossings_; }

  /// Bytes currently admitted through the a<->b pipe.
  std::uint64_t pair_bytes(IspCategory a, IspCategory b) const;

 private:
  static std::size_t pair_index(IspCategory a, IspCategory b);

  // kNumIspCategories^2 slots; only the upper triangle is used.
  std::array<std::optional<LinkQueue>,
             kNumIspCategories * kNumIspCategories>
      pipes_;
  std::uint64_t drops_ = 0;
  std::uint64_t crossings_ = 0;
};

}  // namespace ppsim::net
