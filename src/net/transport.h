#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "net/bandwidth.h"
#include "net/impairment.h"
#include "net/interconnect.h"
#include "net/ip.h"
#include "net/isp.h"
#include "net/latency.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ppsim::net {

enum class Direction : std::uint8_t { kOutgoing = 0, kIncoming = 1 };

/// Abstract delivery contract of a datagram substrate.
///
/// This is the seam the protocol entities (proto::Peer/Tracker/Source/
/// Bootstrap) speak: attach a host with a handler, send best-effort
/// datagrams, detach on departure. Two implementations exist — the
/// simulated Network below (latency/bandwidth/loss models over the
/// discrete-event simulator) and wire::UdpTransport (real nonblocking UDP
/// sockets driven by a wall-clock loop; see src/wire/ and docs/WIRE.md).
/// Protocol code written against this interface runs unmodified in both
/// worlds, which is what keeps sim and wire behavior identical.
///
/// The contract is deliberately UDP-shaped: send() may fail synchronously
/// (returns false) only for drops the sender could observe locally (unknown
/// source, full local queue); every later loss is silent and lands in a
/// Stats bucket. Handlers are invoked on the single event-loop thread of
/// the owning substrate — implementations never call them concurrently.
template <typename Payload>
class DatagramTransport {
 public:
  /// Delivered datagram as seen by the receiving host.
  struct Delivery {
    IpAddress from;
    IpAddress to;
    Payload payload;
    std::uint64_t wire_bytes = 0;
    sim::Time sent_at;  // when the sender handed it to its uplink
  };

  using Handler = std::function<void(const Delivery&)>;

  /// Drop accounting: every packet ends in exactly one bucket — delivered,
  /// or one of the *_drops. The sim Network fills every bucket; the wire
  /// transport maps its socket-level outcomes onto the same buckets
  /// (docs/WIRE.md, "Drop accounting") so tooling reads one schema.
  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t uplink_drops = 0;
    std::uint64_t core_drops = 0;
    std::uint64_t downlink_drops = 0;
    std::uint64_t dead_destination_drops = 0;
    // Fault-injection drops (zero unless an ImpairmentOverlay is active).
    std::uint64_t blackout_drops = 0;
    std::uint64_t brownout_drops = 0;
    std::uint64_t degrade_drops = 0;
  };

  virtual ~DatagramTransport() = default;

  /// Attaches a host. The handler is invoked for every delivered datagram.
  virtual void attach(IpAddress ip, IspId isp, IspCategory category,
                      const AccessProfile& profile, Handler handler) = 0;

  /// Detaches a host (peer leaves). In-flight packets to it are dropped.
  virtual void detach(IpAddress ip) = 0;

  virtual bool attached(IpAddress ip) const = 0;

  /// Sends a datagram. Returns false only for locally observable drops.
  virtual bool send(IpAddress from, IpAddress to, Payload payload,
                    std::uint64_t wire_bytes) = 0;

  virtual const Stats& stats() const = 0;
};

/// UDP-like datagram network over the simulator.
///
/// Templated on the payload type so the substrate stays independent of the
/// protocol living on top (the protocol library instantiates it with its
/// message variant). Each attached host has an IP, an ISP, and an access
/// link; a datagram experiences
///
///   uplink serialization+queueing -> core propagation (LatencyModel, may
///   drop) -> downlink serialization+queueing (may tail-drop)
///
/// and is then delivered to the destination's handler — unless the
/// destination detached in the meantime (peer churn), in which case the
/// packet is silently lost, exactly like real UDP.
///
/// A per-host *tap* observes every sent and received datagram; the capture
/// library uses it to record Wireshark-style traces at probe hosts.
template <typename Payload>
class Network : public DatagramTransport<Payload> {
 public:
  using Delivery = typename DatagramTransport<Payload>::Delivery;
  using Handler = typename DatagramTransport<Payload>::Handler;
  using Stats = typename DatagramTransport<Payload>::Stats;

  /// (direction, local endpoint, remote endpoint, payload, bytes)
  using Tap = std::function<void(Direction, IpAddress local, IpAddress remote,
                                 const Payload&, std::uint64_t)>;
  /// Network-wide observer invoked once per *delivered* datagram. Used by
  /// the experiment harness for swarm-level traffic accounting (something a
  /// real measurement study cannot have — we use it only for ground-truth
  /// validation and the strategy-ablation bench, never in the reproduction
  /// of the paper's probe-side figures).
  using GlobalTap = std::function<void(const Endpoint& from, const Endpoint& to,
                                       const Payload&, std::uint64_t)>;

  Network(sim::Simulator& simulator, LatencyModel latency, sim::Rng rng,
          sim::Time max_backlog = sim::Time::seconds(2))
      : simulator_(simulator),
        latency_(std::move(latency)),
        rng_(rng),
        max_backlog_(max_backlog) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Current simulated time (convenience for taps and tests).
  sim::Time now() const { return simulator_.now(); }

  /// Attaches a host. The handler is invoked for every delivered datagram.
  void attach(IpAddress ip, IspId isp, IspCategory category,
              const AccessProfile& profile, Handler handler) override {
    assert(!ip.is_unspecified());
    auto [it, inserted] = hosts_.try_emplace(ip);
    assert(inserted && "IP already attached");
    Host& h = it->second;
    h.endpoint = Endpoint{ip, isp, category};
    h.link = AccessLink(profile, max_backlog_);
    h.handler = std::move(handler);
    h.epoch = ++epoch_counter_;
  }

  /// Detaches a host (peer leaves). In-flight packets to it are dropped on
  /// arrival; a later re-attach of the same IP is a distinct host (packets
  /// addressed to the old incarnation are not delivered to the new one).
  void detach(IpAddress ip) override { hosts_.erase(ip); }

  bool attached(IpAddress ip) const override { return hosts_.contains(ip); }

  std::size_t host_count() const { return hosts_.size(); }

  void set_global_tap(GlobalTap tap) { global_tap_ = std::move(tap); }

  /// Installs shared inter-ISP bottleneck pipes (see InterconnectConfig).
  /// Packets crossing a category boundary then queue at the corresponding
  /// pipe between uplink and core propagation, and may be tail-dropped.
  void set_interconnects(const InterconnectConfig& config) {
    interconnects_.emplace(config);
  }

  const InterconnectFabric* interconnects() const {
    return interconnects_.has_value() ? &*interconnects_ : nullptr;
  }

  /// Installs (or clears, with nullptr) the fault-injection overlay. The
  /// overlay is borrowed, not owned — the caller (the fault driver's host)
  /// must keep it alive for the network's lifetime. With no overlay, or an
  /// installed-but-inactive one, the send path pays a single branch.
  void set_impairments(const ImpairmentOverlay* overlay) {
    impairments_ = overlay;
  }

  const ImpairmentOverlay* impairments() const { return impairments_; }

  /// Installs (or clears, with nullptr) the capture tap for a host.
  void set_tap(IpAddress ip, Tap tap) {
    auto it = hosts_.find(ip);
    assert(it != hosts_.end());
    it->second.tap = std::move(tap);
  }

  const Endpoint& endpoint(IpAddress ip) const {
    auto it = hosts_.find(ip);
    assert(it != hosts_.end());
    return it->second.endpoint;
  }

  const AccessLink& link(IpAddress ip) const {
    auto it = hosts_.find(ip);
    assert(it != hosts_.end());
    return it->second.link;
  }

  /// Ground-truth RTT between two attached hosts (for tests/validation).
  sim::Time true_rtt(IpAddress a, IpAddress b) const {
    return latency_.pair_rtt(endpoint(a), endpoint(b));
  }

  /// Sends a datagram. Returns false if it was dropped before entering the
  /// core (unknown sender, sender uplink overflow); core and downlink drops
  /// happen later and are reported via stats only — the sender cannot
  /// observe them, as in real life.
  bool send(IpAddress from, IpAddress to, Payload payload,
            std::uint64_t wire_bytes) override {
    auto sit = hosts_.find(from);
    if (sit == hosts_.end()) return false;
    Host& sender = sit->second;
    ++stats_.packets_sent;
    stats_.bytes_sent += wire_bytes;
    if (sender.tap)
      sender.tap(Direction::kOutgoing, from, to, payload, wire_bytes);

    auto admission = sender.link.up().enqueue(simulator_.now(), wire_bytes);
    if (!admission.admitted) {
      ++stats_.uplink_drops;
      return false;
    }

    // Core propagation is computed against the destination's *current*
    // endpoint; if the destination is gone we still charge the sender's
    // uplink (already done) and drop.
    Host* dst = live_host_or_count_drop(to, kAnyEpoch);
    if (dst == nullptr) return true;  // left the sender successfully
    const Endpoint dst_ep = dst->endpoint;
    const std::uint64_t dst_epoch = dst->epoch;

    // Scheduled fault impairments, if armed. Checked before the baseline
    // loss draw so an impairment drop never consumes the baseline's random
    // number — a window that impairs only *other* hosts leaves this
    // sender's stream untouched.
    const ImpairmentOverlay::PairDegradation* degraded = nullptr;
    if (impairments_ != nullptr && impairments_->active()) {
      if (impairments_->category_blocked(sender.endpoint.category) ||
          impairments_->category_blocked(dst_ep.category)) {
        ++stats_.blackout_drops;
        return true;
      }
      const double brownout = impairments_->uplink_loss(from);
      if (brownout > 0.0 && rng_.chance(brownout)) {
        ++stats_.brownout_drops;
        return true;
      }
      degraded = impairments_->pair_degradation(sender.endpoint.category,
                                                dst_ep.category);
      if (degraded != nullptr && degraded->extra_loss > 0.0 &&
          rng_.chance(degraded->extra_loss)) {
        ++stats_.degrade_drops;
        return true;
      }
    }

    if (rng_.chance(latency_.loss_probability(sender.endpoint, dst_ep))) {
      ++stats_.core_drops;
      return true;
    }

    // Cross-ISP packets share the inter-category bottleneck, if modeled.
    sim::Time core_entry = admission.departure;
    if (interconnects_.has_value()) {
      auto crossing = interconnects_->cross(sender.endpoint.category,
                                            dst_ep.category, core_entry,
                                            wire_bytes);
      if (!crossing.admitted) {
        ++stats_.core_drops;
        return true;
      }
      core_entry = crossing.departure;
    }

    sim::Time propagation = latency_.sample_one_way(sender.endpoint, dst_ep,
                                                    rng_);
    if (degraded != nullptr) propagation = propagation + degraded->extra_one_way;
    const sim::Time core_arrival = core_entry + propagation;
    const sim::Time sent_at = simulator_.now();

    simulator_.schedule_at(
        core_arrival,
        [this, from, to, dst_epoch, sent_at, wire_bytes,
         payload = std::move(payload)]() mutable {
          deliver(from, to, dst_epoch, sent_at, wire_bytes,
                  std::move(payload));
        },
        "net.transit");
    return true;
  }

  const Stats& stats() const override { return stats_; }

 private:
  struct Host {
    Endpoint endpoint;
    AccessLink link;
    Handler handler;
    Tap tap;
    std::uint64_t epoch = 0;
  };

  /// Sentinel for live_host_or_count_drop: accept any incarnation of the
  /// destination IP. Real epochs start at 1 (epoch_counter_ pre-increments),
  /// so 0 can never pin a concrete incarnation.
  static constexpr std::uint64_t kAnyEpoch = 0;

  /// The single definition of a dead-destination drop. A packet dies here
  /// when its destination IP is unattached, or — once the packet has been
  /// bound to an incarnation (`epoch != kAnyEpoch`, i.e. after the send-time
  /// lookup) — when the IP was re-attached by a different host since. Each
  /// packet traverses at most one of the three call sites per lifetime
  /// (send-time lookup, core arrival, downlink exit); a drop ends the
  /// packet, so the categories are mutually exclusive by construction.
  Host* live_host_or_count_drop(IpAddress to, std::uint64_t epoch) {
    auto it = hosts_.find(to);
    if (it == hosts_.end() ||
        (epoch != kAnyEpoch && it->second.epoch != epoch)) {
      ++stats_.dead_destination_drops;
      return nullptr;
    }
    return &it->second;
  }

  void deliver(IpAddress from, IpAddress to, std::uint64_t dst_epoch,
               sim::Time sent_at, std::uint64_t wire_bytes, Payload payload) {
    Host* hostp = live_host_or_count_drop(to, dst_epoch);
    if (hostp == nullptr) return;
    Host& host = *hostp;
    auto admission = host.link.down().enqueue(simulator_.now(), wire_bytes);
    if (!admission.admitted) {
      ++stats_.downlink_drops;
      return;
    }
    simulator_.schedule_at(
        admission.departure,
        [this, from, to, dst_epoch, sent_at, wire_bytes,
         payload = std::move(payload)]() mutable {
          Host* hp = live_host_or_count_drop(to, dst_epoch);
          if (hp == nullptr) return;
          Host& h = *hp;
          ++stats_.packets_delivered;
          if (global_tap_) {
            auto fit = hosts_.find(from);
            // Sender may have churned out; use its endpoint if still known.
            if (fit != hosts_.end())
              global_tap_(fit->second.endpoint, h.endpoint, payload,
                          wire_bytes);
          }
          if (h.tap)
            h.tap(Direction::kIncoming, to, from, payload, wire_bytes);
          if (h.handler)
            h.handler(Delivery{from, to, std::move(payload), wire_bytes,
                               sent_at});
        },
        "net.deliver");
  }

  sim::Simulator& simulator_;
  LatencyModel latency_;
  sim::Rng rng_;
  sim::Time max_backlog_;
  std::unordered_map<IpAddress, Host> hosts_;
  std::uint64_t epoch_counter_ = 0;
  Stats stats_;
  GlobalTap global_tap_;
  std::optional<InterconnectFabric> interconnects_;
  const ImpairmentOverlay* impairments_ = nullptr;
};

}  // namespace ppsim::net
