#include "net/latency.h"

#include <algorithm>
#include <cmath>

namespace ppsim::net {

namespace {

bool is_china(IspCategory c) {
  return c == IspCategory::kTele || c == IspCategory::kCnc ||
         c == IspCategory::kCer || c == IspCategory::kOtherCn;
}

}  // namespace

LatencyModel::LatencyModel(LatencyConfig config) : config_(config) {}

sim::Time LatencyModel::base_rtt(const Endpoint& a, const Endpoint& b) const {
  if (a.isp == b.isp) return config_.intra_isp_rtt;
  if (a.category == b.category) {
    // Two ASes in the same reporting bucket; for FOREIGN this still means
    // different countries much of the time, so use the cross rate.
    if (a.category == IspCategory::kForeign) return config_.foreign_cross_rtt;
    return config_.intra_category_rtt;
  }
  const bool a_cn = is_china(a.category);
  const bool b_cn = is_china(b.category);
  if (a_cn != b_cn) return config_.transoceanic_rtt;
  if (!a_cn) return config_.foreign_cross_rtt;
  // Both in China, different buckets. CERNET peers with both commercial
  // backbones at academic exchange points; TELE<->CNC crosses the congested
  // national interconnect.
  if (a.category == IspCategory::kCer || b.category == IspCategory::kCer)
    return config_.cer_cross_rtt;
  return config_.china_cross_isp_rtt;
}

double LatencyModel::pair_factor(IpAddress a, IpAddress b) const {
  // Symmetric stable hash of the unordered pair.
  std::uint64_t lo = std::min(a.value(), b.value());
  std::uint64_t hi = std::max(a.value(), b.value());
  std::uint64_t h = sim::hash_combine(config_.pair_salt,
                                      sim::hash_combine(lo, hi));
  // Map hash to N(0,1) via two uniform halves (Box-Muller on fixed bits).
  double u1 = static_cast<double>((h >> 11) | 1) * 0x1.0p-53;
  double u2 = static_cast<double>((sim::mix64(h) >> 11) | 1) * 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(6.28318530717958647692 * u2);
  return std::exp(config_.pair_sigma * z);
}

sim::Time LatencyModel::pair_rtt(const Endpoint& a, const Endpoint& b) const {
  return sim::scale(base_rtt(a, b), pair_factor(a.ip, b.ip));
}

sim::Time LatencyModel::sample_one_way(const Endpoint& a, const Endpoint& b,
                                       sim::Rng& rng) const {
  sim::Time half = pair_rtt(a, b) / 2;
  double jitter = rng.lognormal_median(1.0, config_.packet_sigma);
  sim::Time d = sim::scale(half, jitter);
  // Never less than a LAN-scale floor.
  return std::max(d, sim::Time::micros(200));
}

double LatencyModel::loss_probability(const Endpoint& a,
                                      const Endpoint& b) const {
  if (a.isp == b.isp) return config_.intra_isp_loss;
  const bool a_cn = is_china(a.category);
  const bool b_cn = is_china(b.category);
  if (a_cn != b_cn) return config_.transoceanic_loss;
  if (!a_cn) return config_.foreign_cross_loss;
  return config_.china_cross_loss;
}

}  // namespace ppsim::net
