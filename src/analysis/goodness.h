#pragma once

#include <span>
#include <vector>

#include "sim/rng.h"

namespace ppsim::analysis {

/// Goodness-of-fit and uncertainty tooling layered on the fitters: the
/// paper reports R² only, but for a reusable toolkit we also provide a
/// Kolmogorov-Smirnov statistic against a fitted Weibull (the CCDF of a
/// stretched-exponential rank distribution) and bootstrap confidence
/// intervals for scalar statistics such as locality shares.

/// Two-parameter Weibull distribution, CCDF(x) = exp(-(x/lambda)^k).
struct Weibull {
  double lambda = 1.0;  // scale
  double k = 1.0;       // shape

  double cdf(double x) const;
  double ccdf(double x) const;
  /// Inverse CDF (quantile function), p in [0, 1).
  double quantile(double p) const;
};

/// Fits a Weibull to positive samples by linear regression in the
/// log(-log(CCDF)) vs log(x) domain (the standard Weibull plot). Returns
/// the fit and its R² in that domain.
struct WeibullFit {
  Weibull dist;
  double r2 = 0;
};
WeibullFit fit_weibull(std::span<const double> samples);

/// Kolmogorov-Smirnov statistic of the samples against a reference
/// distribution: sup |F_empirical - F_ref|. Smaller is better; ~1.36/sqrt(n)
/// is the 5% critical value for large n.
double ks_statistic(std::span<const double> samples, const Weibull& ref);

/// Result of a bootstrap: point estimate plus a percentile confidence
/// interval.
struct BootstrapInterval {
  double estimate = 0;
  double lo = 0;
  double hi = 0;
};

/// Percentile bootstrap of the mean of `samples` (resamples with
/// replacement). `confidence` in (0, 1), e.g. 0.95.
BootstrapInterval bootstrap_mean(std::span<const double> samples,
                                 sim::Rng& rng, int resamples = 1000,
                                 double confidence = 0.95);

/// Percentile bootstrap of an arbitrary statistic over resampled data.
BootstrapInterval bootstrap_statistic(
    std::span<const double> samples, sim::Rng& rng,
    double (*statistic)(std::span<const double>), int resamples = 1000,
    double confidence = 0.95);

}  // namespace ppsim::analysis
