#pragma once

#include <span>
#include <vector>

namespace ppsim::analysis {

/// Ordinary least-squares line y = slope * x + intercept with the
/// coefficient of determination computed in the same (x, y) space.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};

LinearFit least_squares(std::span<const double> xs, std::span<const double> ys);

/// Zipf rank-distribution fit: y_i ∝ i^-alpha, fitted as a line in
/// log(rank)-log(value) space. `r2` says how straight the data is in
/// log-log — the paper uses a *low* R² here as evidence the request
/// distribution is not Zipf.
struct ZipfFit {
  double alpha = 0;  // positive for decaying rank distributions
  double r2 = 0;
};

/// `ranked` must be sorted in descending order (rank 1 first).
ZipfFit fit_zipf(std::span<const double> ranked);

/// Stretched-exponential rank-distribution fit, the model the paper fits
/// to request counts and traffic contributions (Figures 11-14):
///
///     y_i^c = -a * log(i) + b,   1 <= i <= n   (natural log)
///
/// i.e. the data is a straight line when the y axis is raised to the
/// power c and the x axis is logarithmic (the "SE scale"). The CCDF of
/// such data is Weibull. `c` is selected by grid search to maximize R²
/// of the inner linear fit in (log i, y^c) space.
struct StretchedExpFit {
  double c = 0;   // stretch exponent, typically 0.2-0.4 in the paper
  double a = 0;   // slope magnitude (paper's `a`)
  double b = 0;   // intercept (paper's `b`)
  double r2 = 0;  // in SE-transformed space

  /// Model prediction for rank i (1-based): (b - a log i)^(1/c), clamped
  /// at zero below.
  double predict(double rank) const;
};

struct StretchedExpOptions {
  double c_min = 0.05;
  double c_max = 1.0;
  double c_step = 0.05;
};

/// `ranked` must be sorted descending with positive values.
StretchedExpFit fit_stretched_exponential(std::span<const double> ranked,
                                          StretchedExpOptions opts = {});

/// Generates an n-point synthetic rank distribution that follows the
/// stretched-exponential model exactly (y_n = 1 boundary condition, so
/// b = 1 + a log n as in the paper's Eq. (2)). Used by tests and by the
/// workload library to synthesize realistic request mixes.
std::vector<double> stretched_exponential_series(std::size_t n, double c,
                                                 double a);

}  // namespace ppsim::analysis
