#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ppsim::analysis {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on the sorted copy.
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Pearson correlation coefficient; 0 when either side is constant or the
/// spans are shorter than 2 (no meaningful correlation).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Sums of a span (convenience for share computations).
double sum(std::span<const double> xs);

/// Element-wise natural log; values <= 0 are clamped to `floor` first so
/// log-space fits tolerate zero entries the way the paper's plots do.
std::vector<double> log_transform(std::span<const double> xs,
                                  double floor = 1e-12);

}  // namespace ppsim::analysis
