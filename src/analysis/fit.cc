#include "analysis/fit.h"

#include <algorithm>
#include <cmath>

#include "analysis/stats.h"

namespace ppsim::analysis {

LinearFit least_squares(std::span<const double> xs,
                        std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy <= 0) {
    fit.r2 = 1.0;  // y constant and perfectly predicted by a flat line
    return fit;
  }
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r2 = 1.0 - ss_res / syy;
  return fit;
}

ZipfFit fit_zipf(std::span<const double> ranked) {
  std::vector<double> log_rank;
  std::vector<double> log_val;
  log_rank.reserve(ranked.size());
  log_val.reserve(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] <= 0) continue;
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    log_val.push_back(std::log(ranked[i]));
  }
  LinearFit lin = least_squares(log_rank, log_val);
  return ZipfFit{-lin.slope, lin.r2};
}

double StretchedExpFit::predict(double rank) const {
  const double yc = b - a * std::log(rank);
  if (yc <= 0 || c <= 0) return 0;
  return std::pow(yc, 1.0 / c);
}

StretchedExpFit fit_stretched_exponential(std::span<const double> ranked,
                                          StretchedExpOptions opts) {
  StretchedExpFit best;
  best.r2 = -1e300;
  if (ranked.size() < 2) {
    best.r2 = 0;
    return best;
  }
  std::vector<double> log_rank;
  log_rank.reserve(ranked.size());
  std::vector<double> positive;
  positive.reserve(ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] <= 0) continue;
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    positive.push_back(ranked[i]);
  }
  if (positive.size() < 2) {
    best.r2 = 0;
    return best;
  }
  std::vector<double> yc(positive.size());
  for (double c = opts.c_min; c <= opts.c_max + 1e-9; c += opts.c_step) {
    for (std::size_t i = 0; i < positive.size(); ++i)
      yc[i] = std::pow(positive[i], c);
    LinearFit lin = least_squares(log_rank, yc);
    if (lin.r2 > best.r2) {
      best.c = c;
      best.a = -lin.slope;
      best.b = lin.intercept;
      best.r2 = lin.r2;
    }
  }
  return best;
}

std::vector<double> stretched_exponential_series(std::size_t n, double c,
                                                 double a) {
  // Boundary condition y_n = 1 gives b = 1 + a log n (paper Eq. (2)).
  const double b = 1.0 + a * std::log(static_cast<double>(n));
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    const double yc = b - a * std::log(static_cast<double>(i));
    out.push_back(std::pow(std::max(yc, 0.0), 1.0 / c));
  }
  return out;
}

}  // namespace ppsim::analysis
