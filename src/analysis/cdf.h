#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ppsim::analysis {

/// One point of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  // P(X <= value)
};

/// Empirical CDF over the values (sorted ascending internally).
std::vector<CdfPoint> empirical_cdf(std::span<const double> values);

/// Cumulative contribution curve over *ranked* contributors: element k of
/// the result is the fraction of the total contributed by the top (k+1)
/// contributors. This is the curve behind Figures 11(c)-14(c).
std::vector<double> cumulative_share(std::span<const double> contributions);

/// Fraction of the total contributed by the top `fraction` (0..1] of
/// contributors — e.g. top_share(bytes, 0.10) is the paper's headline
/// "top 10% of connected peers provide ~70% of the traffic".
double top_share(std::span<const double> contributions, double fraction);

}  // namespace ppsim::analysis
