#include "analysis/cdf.h"

#include <algorithm>
#include <cmath>

namespace ppsim::analysis {

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  out.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse ties onto the last occurrence so the CDF is a function.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    out.push_back(CdfPoint{sorted[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<double> cumulative_share(std::span<const double> contributions) {
  std::vector<double> sorted(contributions.begin(), contributions.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double total = 0;
  for (double v : sorted) total += v;
  std::vector<double> out;
  out.reserve(sorted.size());
  double acc = 0;
  for (double v : sorted) {
    acc += v;
    out.push_back(total > 0 ? acc / total : 0);
  }
  return out;
}

double top_share(std::span<const double> contributions, double fraction) {
  if (contributions.empty() || fraction <= 0) return 0;
  auto curve = cumulative_share(contributions);
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(curve.size())));
  const std::size_t idx = std::min(curve.size(), std::max<std::size_t>(k, 1));
  return curve[idx - 1];
}

}  // namespace ppsim::analysis
