#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace ppsim::analysis {

double sum(std::span<const double> xs) {
  double s = 0;
  for (double x : xs) s += x;
  return s;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return sum(xs) / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1 - frac) + sorted[lo + 1] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> log_transform(std::span<const double> xs, double floor) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(std::log(std::max(x, floor)));
  return out;
}

}  // namespace ppsim::analysis
