#include "analysis/summary.h"

#include <cstdio>
#include <ostream>

#include "analysis/stats.h"

namespace ppsim::analysis {

Summary describe(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = percentile(xs, 0);
  s.p25 = percentile(xs, 25);
  s.median = percentile(xs, 50);
  s.p75 = percentile(xs, 75);
  s.max = percentile(xs, 100);
  return s;
}

std::string to_string(const Summary& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.4g sd=%.4g min/p25/med/p75/max="
                "%.4g/%.4g/%.4g/%.4g/%.4g",
                s.n, s.mean, s.stddev, s.min, s.p25, s.median, s.p75, s.max);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Summary& s) {
  return os << to_string(s);
}

}  // namespace ppsim::analysis
