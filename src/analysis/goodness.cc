#include "analysis/goodness.h"

#include <algorithm>
#include <cmath>

#include "analysis/fit.h"
#include "analysis/stats.h"

namespace ppsim::analysis {

double Weibull::cdf(double x) const {
  if (x <= 0) return 0;
  return 1.0 - std::exp(-std::pow(x / lambda, k));
}

double Weibull::ccdf(double x) const { return 1.0 - cdf(x); }

double Weibull::quantile(double p) const {
  p = std::clamp(p, 0.0, 1.0 - 1e-15);
  return lambda * std::pow(-std::log(1.0 - p), 1.0 / k);
}

WeibullFit fit_weibull(std::span<const double> samples) {
  WeibullFit out;
  std::vector<double> sorted;
  sorted.reserve(samples.size());
  for (double x : samples)
    if (x > 0) sorted.push_back(x);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n < 3) return out;

  // Median-rank plotting positions avoid the log(0) endpoints.
  std::vector<double> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double f = (static_cast<double>(i) + 0.7) /
                     (static_cast<double>(n) + 0.4);
    if (f <= 0 || f >= 1) continue;
    xs.push_back(std::log(sorted[i]));
    ys.push_back(std::log(-std::log(1.0 - f)));
  }
  LinearFit lin = least_squares(xs, ys);
  if (lin.slope <= 0) return out;
  out.dist.k = lin.slope;
  out.dist.lambda = std::exp(-lin.intercept / lin.slope);
  out.r2 = lin.r2;
  return out;
}

double ks_statistic(std::span<const double> samples, const Weibull& ref) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n == 0) return 0;
  double d = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double f = ref.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  return d;
}

namespace {

BootstrapInterval bootstrap_impl(std::span<const double> samples,
                                 sim::Rng& rng,
                                 double (*statistic)(std::span<const double>),
                                 int resamples, double confidence) {
  BootstrapInterval out;
  if (samples.empty()) return out;
  out.estimate = statistic(samples);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(samples.size());
  for (int r = 0; r < resamples; ++r) {
    for (auto& x : resample)
      x = samples[static_cast<std::size_t>(rng.next_below(samples.size()))];
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  out.lo = percentile(stats, alpha * 100.0);
  out.hi = percentile(stats, (1.0 - alpha) * 100.0);
  return out;
}

}  // namespace

BootstrapInterval bootstrap_mean(std::span<const double> samples,
                                 sim::Rng& rng, int resamples,
                                 double confidence) {
  return bootstrap_impl(samples, rng, &mean, resamples, confidence);
}

BootstrapInterval bootstrap_statistic(
    std::span<const double> samples, sim::Rng& rng,
    double (*statistic)(std::span<const double>), int resamples,
    double confidence) {
  return bootstrap_impl(samples, rng, statistic, resamples, confidence);
}

}  // namespace ppsim::analysis
