#pragma once

#include <iosfwd>
#include <span>
#include <string>

namespace ppsim::analysis {

/// Five-number-style descriptive summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
};

Summary describe(std::span<const double> xs);

/// Renders "n=... mean=... sd=... min/p25/med/p75/max=..." on one line.
std::string to_string(const Summary& s);

std::ostream& operator<<(std::ostream& os, const Summary& s);

}  // namespace ppsim::analysis
