#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace ppsim::sim {

/// Simulated time, stored as integer microseconds since the start of the run.
///
/// A strong type (rather than a bare int64_t) so that times and durations
/// cannot be accidentally mixed with counts or byte sizes. Arithmetic is
/// closed over the type: Time +/- Time yields Time, which doubles as a
/// duration. Microsecond resolution is fine-grained enough for network
/// propagation delays (tens of microseconds) while allowing ~292k simulated
/// years before overflow.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time micros(std::int64_t us) { return Time{us}; }
  static constexpr Time millis(std::int64_t ms) { return Time{ms * 1000}; }
  static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000}; }
  static constexpr Time minutes(std::int64_t m) {
    return Time{m * 60'000'000};
  }
  static constexpr Time hours(std::int64_t h) {
    return Time{h * 3'600'000'000LL};
  }

  /// Converts a floating-point second count; rounds toward zero.
  static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e6)};
  }

  constexpr std::int64_t as_micros() const { return us_; }
  constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double as_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  constexpr Time operator+(Time o) const { return Time{us_ + o.us_}; }
  constexpr Time operator-(Time o) const { return Time{us_ - o.us_}; }
  constexpr Time operator*(std::int64_t k) const { return Time{us_ * k}; }
  constexpr Time operator/(std::int64_t k) const { return Time{us_ / k}; }
  constexpr Time& operator+=(Time o) {
    us_ += o.us_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    us_ -= o.us_;
    return *this;
  }

  constexpr auto operator<=>(const Time&) const = default;

  /// Human-readable rendering, e.g. "1.500s" or "250ms".
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Scales a duration by a floating-point factor (for jitter models).
constexpr Time scale(Time t, double factor) {
  return Time::micros(
      static_cast<std::int64_t>(static_cast<double>(t.as_micros()) * factor));
}

}  // namespace ppsim::sim
