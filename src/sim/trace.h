#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sim/time.h"

namespace ppsim::sim {

/// One traced protocol/simulator event: a sim-timestamp, an event name, and
/// an ordered list of typed fields. Field order is the emission order, so a
/// given emitter always serializes identically — trace files from same-seed
/// runs are byte-identical (no wall-clock, no addresses, no hash order).
///
/// TraceEvent and the abstract TraceSink live in `sim` (not `obs`) because
/// protocol code below the observability layer emits events: the module DAG
/// is sim <- net <- proto <- obs, and the lint layering pass rejects upward
/// includes. Concrete sinks (NDJSON, tee, counting, flight recorder) stay
/// in `obs`, which also re-exports these two names as obs::TraceEvent /
/// obs::TraceSink for observability-side code.
class TraceEvent {
 public:
  using Value = std::variant<std::uint64_t, std::int64_t, double, bool,
                             std::string>;
  struct Field {
    std::string key;
    Value value;
  };

  TraceEvent(Time t, std::string_view name) : t_(t), name_(name) {}

  TraceEvent& field(std::string_view key, std::uint64_t value) {
    return push(key, Value(std::in_place_type<std::uint64_t>, value));
  }
  TraceEvent& field(std::string_view key, std::int64_t value) {
    return push(key, Value(std::in_place_type<std::int64_t>, value));
  }
  TraceEvent& field(std::string_view key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  TraceEvent& field(std::string_view key, unsigned value) {
    return field(key, static_cast<std::uint64_t>(value));
  }
  TraceEvent& field(std::string_view key, double value) {
    return push(key, Value(std::in_place_type<double>, value));
  }
  TraceEvent& field(std::string_view key, bool value) {
    return push(key, Value(std::in_place_type<bool>, value));
  }
  TraceEvent& field(std::string_view key, std::string_view value) {
    return push(key, Value(std::in_place_type<std::string>, value));
  }
  TraceEvent& field(std::string_view key, const char* value) {
    return field(key, std::string_view(value));
  }

  Time time() const { return t_; }
  const std::string& name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }

 private:
  TraceEvent& push(std::string_view key, Value value) {
    fields_.push_back(Field{std::string(key), std::move(value)});
    return *this;
  }

  Time t_;
  std::string name_;
  std::vector<Field> fields_;
};

/// Receiver of trace events. Emitters hold a TraceSink* that is nullptr by
/// default, so a disabled trace costs one branch per would-be event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& event) = 0;
};

}  // namespace ppsim::sim
