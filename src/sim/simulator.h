#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ppsim::sim {

class SimObserver;

/// Opaque handle to a scheduled event; lets callers cancel pending timers.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Single-threaded discrete-event simulator.
///
/// Events are callbacks ordered by (time, insertion sequence), giving a total
/// deterministic order: two events at the same instant fire in the order they
/// were scheduled. The simulator owns no domain state; protocol entities
/// capture what they need in their callbacks.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` after the current time. Negative delays
  /// are clamped to zero (fire "now", after already-pending events at now).
  /// `category` labels the event for observers (tracing/profiling); it must
  /// point at storage outliving the simulator — in practice a string
  /// literal — and has no effect on the run itself.
  TimerHandle schedule(Time delay, Callback cb,
                       const char* category = nullptr) {
    return schedule_at(delay.is_negative() ? now_ : now_ + delay,
                       std::move(cb), category);
  }

  /// Schedules `cb` at an absolute time (clamped to `now()` if in the past).
  TimerHandle schedule_at(Time when, Callback cb,
                          const char* category = nullptr);

  /// Cancels a pending event. Returns true if the event had not yet fired.
  /// Cancellation is O(1): the event is tombstoned and skipped on pop.
  bool cancel(TimerHandle h);

  /// Runs events until the queue is empty or `until` is reached; events
  /// scheduled exactly at `until` do fire. Returns the number of events run.
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains completely.
  std::uint64_t run();

  /// Stops the current run_until()/run() loop after the current event.
  void request_stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return pending_.size(); }

  /// Latest firing time ever scheduled (clamp-adjusted), even if that event
  /// has since fired or been cancelled. `latest_scheduled() - now()` is the
  /// scheduler's event horizon: how far into the simulated future the
  /// pending work currently reaches. Tracked as a two-comparison max in
  /// schedule_at, so the accounting costs nothing measurable per event.
  Time latest_scheduled() const { return latest_scheduled_; }

  /// Approximate heap footprint of the pending-event queue (containers'
  /// element storage only — std::function captures are not visible from
  /// here). For the resource-probe gauges, not for exact accounting.
  std::size_t approx_queue_bytes() const {
    return pending_events() * sizeof(Event) +
           (pending_.size() + cancelled_.size()) *
               (sizeof(std::uint64_t) * 2);
  }

  /// Allocates the next causal-tracing span id: a plain monotonic counter,
  /// deterministic by construction (no RNG draw, no wall clock). Callers
  /// must only allocate when causal tracing is enabled so that runs without
  /// it stay byte-identical — allocation itself never perturbs event order,
  /// but unused ids would still change emitted traces.
  std::uint64_t allocate_span_id() { return ++last_span_id_; }
  std::uint64_t spans_allocated() const { return last_span_id_; }

  /// Registers an observer notified around every executed event. Observers
  /// are purely passive (see SimObserver); with none registered the event
  /// loop takes the plain fast path. Not owned; callers remove (or outlive
  /// the simulator) before destroying the observer.
  void add_observer(SimObserver* observer);
  void remove_observer(SimObserver* observer);

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    const char* category;  // observer label; nullptr = untagged
    Callback cb;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  Time now_;
  Time latest_scheduled_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_span_id_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Seqs scheduled but not yet fired or cancelled. Distinguishes "still
  // pending" from "already fired" so cancel() after the fact reports false
  // instead of planting a stale tombstone.
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones, consumed on pop
  std::vector<SimObserver*> observers_;
};

/// Convenience: runs `tick` every `period` until it returns false. Returns
/// the handle of the *first* firing: cancelling it before that firing stops
/// the whole chain, but once the first tick has fired the chain re-arms
/// under fresh handles, so periodic tasks that must stay stoppable should
/// keep their own flag (and return false from `tick`). `category` labels
/// every firing of the chain for observers.
TimerHandle schedule_periodic(Simulator& simulator, Time period,
                              std::function<bool()> tick,
                              const char* category = nullptr);

}  // namespace ppsim::sim
