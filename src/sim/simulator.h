#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ppsim::sim {

/// Opaque handle to a scheduled event; lets callers cancel pending timers.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit TimerHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Single-threaded discrete-event simulator.
///
/// Events are callbacks ordered by (time, insertion sequence), giving a total
/// deterministic order: two events at the same instant fire in the order they
/// were scheduled. The simulator owns no domain state; protocol entities
/// capture what they need in their callbacks.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` after the current time. Negative delays
  /// are clamped to zero (fire "now", after already-pending events at now).
  TimerHandle schedule(Time delay, Callback cb) {
    return schedule_at(delay.is_negative() ? now_ : now_ + delay,
                       std::move(cb));
  }

  /// Schedules `cb` at an absolute time (clamped to `now()` if in the past).
  TimerHandle schedule_at(Time when, Callback cb);

  /// Cancels a pending event. Returns true if the event had not yet fired.
  /// Cancellation is O(1): the event is tombstoned and skipped on pop.
  bool cancel(TimerHandle h);

  /// Runs events until the queue is empty or `until` is reached; events
  /// scheduled exactly at `until` do fire. Returns the number of events run.
  std::uint64_t run_until(Time until);

  /// Runs until the queue drains completely.
  std::uint64_t run();

  /// Stops the current run_until()/run() loop after the current event.
  void request_stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return pending_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  Time now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Seqs scheduled but not yet fired or cancelled. Distinguishes "still
  // pending" from "already fired" so cancel() after the fact reports false
  // instead of planting a stale tombstone.
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones, consumed on pop
};

/// Convenience: reschedules itself with a fixed period until `cancel` or the
/// owner drops the handle chain. Returns the handle of the *first* firing;
/// periodic tasks that must be stoppable should instead keep their own flag.
void schedule_periodic(Simulator& simulator, Time period,
                       std::function<bool()> tick);

}  // namespace ppsim::sim
