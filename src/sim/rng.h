#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace ppsim::sim {

/// Deterministic pseudo-random generator (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component of the simulator draws from an Rng forked from
/// the run's master seed, so a run is exactly reproducible from its seed and
/// independent components do not perturb each other's streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent child stream; used to give each peer/model its
  /// own generator so event-ordering changes don't cascade.
  Rng fork(std::uint64_t stream_id);

  std::uint64_t next_u64();

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no state carried between calls).
  double normal(double mean, double stddev);

  /// Log-normal such that the median is `median` and sigma is the log-space
  /// standard deviation. Handy for heavy-ish latency jitter.
  double lognormal_median(double median, double sigma);

  /// Pareto (power-law) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);

  /// Weibull with scale lambda and shape k (stretched-exponential sessions).
  double weibull(double lambda, double k);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Zero/negative weights are treated as zero; if all are zero, picks
  /// uniformly.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples up to k distinct elements from v (order randomized).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> pool = v;
    if (k >= pool.size()) {
      shuffle(pool);
      return pool;
    }
    // Partial Fisher-Yates: first k slots end up a uniform sample.
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + static_cast<std::size_t>(next_below(pool.size() - i));
      using std::swap;
      swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

 private:
  std::uint64_t s_[4];
};

/// Stateless 64-bit mix; used for stable per-pair jitter (same inputs always
/// hash to the same value regardless of draw order).
std::uint64_t mix64(std::uint64_t x);

/// Combines two keys into one hash (order-sensitive).
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace ppsim::sim
