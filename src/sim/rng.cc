#include "sim/rng.h"

#include <cassert>

namespace ppsim::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream_id) {
  return Rng(hash_combine(next_u64(), mix64(stream_id)));
}

std::uint64_t Rng::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0) u1 = 0x1.0p-53;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  return mean + stddev * z;
}

double Rng::lognormal_median(double median, double sigma) {
  assert(median > 0);
  return median * std::exp(normal(0.0, sigma));
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0 && alpha > 0);
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::weibull(double lambda, double k) {
  assert(lambda > 0 && k > 0);
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return lambda * std::pow(-std::log(u), 1.0 / k);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights)
    if (w > 0) total += w;
  if (total <= 0) return static_cast<std::size_t>(next_below(weights.size()));
  double r = uniform() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      acc += weights[i];
      if (r < acc) return i;
    }
  }
  return weights.size() - 1;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace ppsim::sim
