#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace ppsim::sim {

/// Passive hook into the simulator's event loop, for observability layers
/// (tracing, profiling) that must never influence the run itself.
///
/// Observers are invoked synchronously around each executed event, so they
/// may read simulator state but must not schedule, cancel, or otherwise
/// mutate it — an observer that feeds back into the event queue would break
/// the determinism contract the whole tree is built on. `category` is the
/// label the scheduling site attached to the event ("" when untagged); it
/// points at a string literal, so it may be retained without copying.
class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// Called just before an event's callback runs. `queue_depth` is the
  /// number of events still pending (the fired event excluded).
  virtual void on_event_begin(Time now, std::uint64_t seq,
                              const char* category,
                              std::size_t queue_depth) = 0;

  /// Called right after the callback returns. Wall-clock profilers pair
  /// this with on_event_begin; tracing observers can usually ignore it.
  virtual void on_event_end(Time now, const char* category) {
    (void)now;
    (void)category;
  }
};

}  // namespace ppsim::sim
