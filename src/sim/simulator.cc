#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>

#include "sim/observer.h"
#include "sim/time.h"

namespace ppsim::sim {

TimerHandle Simulator::schedule_at(Time when, Callback cb,
                                   const char* category) {
  assert(cb);
  if (when < now_) when = now_;
  if (when > latest_scheduled_) latest_scheduled_ = when;
  std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, category, std::move(cb)});
  pending_.insert(seq);
  return TimerHandle{seq};
}

void Simulator::add_observer(SimObserver* observer) {
  assert(observer != nullptr);
  observers_.push_back(observer);
}

void Simulator::remove_observer(SimObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

bool Simulator::cancel(TimerHandle h) {
  if (!h.valid()) return false;
  // Only still-pending events can be cancelled: a handle whose event
  // already fired (or was already cancelled) reports false.
  if (pending_.erase(h.seq_) == 0) return false;
  cancelled_.insert(h.seq_);
  return true;
}

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move the event out before popping so the callback may schedule/cancel.
    Event ev{top.when, top.seq, top.category,
             std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    pending_.erase(ev.seq);
    now_ = ev.when;
    if (observers_.empty()) {
      ev.cb();
    } else {
      const char* category = ev.category == nullptr ? "" : ev.category;
      const std::size_t depth = queue_.size();
      for (SimObserver* obs : observers_)
        obs->on_event_begin(now_, ev.seq, category, depth);
      ev.cb();
      for (SimObserver* obs : observers_) obs->on_event_end(now_, category);
    }
    ++ran;
    ++events_executed_;
  }
  if (queue_.empty()) {
    // Advance the clock to the horizon so repeated run_until calls observe
    // monotonically increasing time even across idle stretches. The
    // drain-everything sentinel used by run() is excluded: after run() the
    // clock rests at the last event's time.
    if (until > now_ && until < Time::micros(INT64_MAX)) now_ = until;
    cancelled_.clear();
  }
  return ran;
}

std::uint64_t Simulator::run() {
  return run_until(Time::micros(INT64_MAX));
}

TimerHandle schedule_periodic(Simulator& simulator, Time period,
                              std::function<bool()> tick,
                              const char* category) {
  assert(period > Time::zero());
  // Self-rescheduling chain; stops when tick() returns false. Ownership is
  // one-directional: each pending event's callback holds the shared state,
  // and the state holds nothing that refers back to the callback. When a
  // tick declines to re-arm (or the event is cancelled, or the simulator is
  // destroyed with the event still queued), the callback's destruction
  // releases the last reference and the state is freed — a closure that
  // captured its own shared_ptr would instead form a cycle and leak.
  struct State {
    Simulator* sim;
    Time period;
    std::function<bool()> tick;
    const char* category;
    static TimerHandle arm(const std::shared_ptr<State>& state) {
      return state->sim->schedule(
          state->period,
          [state] {
            if (state->tick()) arm(state);
          },
          state->category);
    }
  };
  return State::arm(std::make_shared<State>(
      State{&simulator, period, std::move(tick), category}));
}

std::string Time::to_string() const {
  char buf[32];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us_ / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

}  // namespace ppsim::sim
