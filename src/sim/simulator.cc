#include "sim/simulator.h"

#include <cassert>
#include <cstdio>
#include <memory>

#include "sim/time.h"

namespace ppsim::sim {

TimerHandle Simulator::schedule_at(Time when, Callback cb) {
  assert(cb);
  if (when < now_) when = now_;
  std::uint64_t seq = next_seq_++;
  queue_.push(Event{when, seq, std::move(cb)});
  ++live_events_;
  return TimerHandle{seq};
}

bool Simulator::cancel(TimerHandle h) {
  if (!h.valid()) return false;
  // Only tombstone if the event is still plausibly pending.
  if (h.seq_ >= next_seq_) return false;
  return cancelled_.insert(h.seq_).second;
}

std::uint64_t Simulator::run_until(Time until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Event& top = queue_.top();
    if (top.when > until) break;
    // Move the event out before popping so the callback may schedule/cancel.
    Event ev{top.when, top.seq, std::move(const_cast<Event&>(top).cb)};
    queue_.pop();
    --live_events_;
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    now_ = ev.when;
    ev.cb();
    ++ran;
    ++events_executed_;
  }
  if (queue_.empty()) {
    // Advance the clock to the horizon so repeated run_until calls observe
    // monotonically increasing time even across idle stretches. The
    // drain-everything sentinel used by run() is excluded: after run() the
    // clock rests at the last event's time.
    if (until > now_ && until < Time::micros(INT64_MAX)) now_ = until;
    cancelled_.clear();
  }
  return ran;
}

std::uint64_t Simulator::run() {
  return run_until(Time::micros(INT64_MAX));
}

void schedule_periodic(Simulator& simulator, Time period,
                       std::function<bool()> tick) {
  assert(period > Time::zero());
  // Self-rescheduling closure; stops when tick() returns false.
  auto loop = std::make_shared<std::function<void()>>();
  Simulator* simp = &simulator;
  *loop = [simp, period, tick = std::move(tick), loop]() {
    if (tick()) simp->schedule(period, *loop);
  };
  simulator.schedule(period, *loop);
}

std::string Time::to_string() const {
  char buf[32];
  if (us_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(us_ / 1'000'000));
  } else if (us_ % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(us_ / 1000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

}  // namespace ppsim::sim
