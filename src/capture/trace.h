#pragma once

#include <memory>
#include <vector>

#include "net/ip.h"
#include "net/transport.h"
#include "proto/host.h"
#include "proto/message.h"
#include "sim/time.h"

namespace ppsim::capture {

/// One captured datagram at a probe host, as Wireshark would record it:
/// timestamp, direction, the remote address, the size on the wire, and the
/// decoded payload. The analyzer works exclusively on these records — it
/// has no access to simulator internals, mirroring the paper's passive
/// measurement position.
struct TraceRecord {
  sim::Time time;
  net::Direction direction = net::Direction::kOutgoing;
  net::IpAddress local;
  net::IpAddress remote;
  std::uint64_t wire_bytes = 0;
  proto::Message payload;
};

using PacketTrace = std::vector<TraceRecord>;

/// Installs a capture tap on `ip` and appends every sent/received datagram
/// to the returned trace. The trace is heap-allocated and shared so it
/// outlives network detach/re-attach of the host.
std::shared_ptr<PacketTrace> attach_sniffer(proto::PeerNetwork& network,
                                            net::IpAddress ip);

}  // namespace ppsim::capture
