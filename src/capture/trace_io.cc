#include "capture/trace_io.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace ppsim::capture {

namespace {

void write_ip_list(std::ostream& os, const std::vector<net::IpAddress>& ips) {
  os << ips.size();
  for (const auto& ip : ips) os << ',' << ip.value();
}

void write_map(std::ostream& os, const proto::BufferMap& map) {
  os << map.base << ',' << map.have.size();
  // Bits packed as hex nibbles to keep lines short.
  os << ',';
  int nibble = 0, filled = 0;
  for (std::size_t i = 0; i < map.have.size(); ++i) {
    nibble = (nibble << 1) | (map.have[i] ? 1 : 0);
    if (++filled == 4) {
      os << "0123456789abcdef"[nibble];
      nibble = 0;
      filled = 0;
    }
  }
  if (filled > 0) os << "0123456789abcdef"[nibble << (4 - filled)];
}

struct FieldWriter {
  std::ostream& os;

  void operator()(const proto::ChannelListQuery&) const {}
  void operator()(const proto::ChannelListReply& m) const {
    os << m.channels.size();
    for (auto c : m.channels) os << ',' << c;
  }
  void operator()(const proto::JoinQuery& m) const { os << m.channel; }
  void operator()(const proto::JoinReply& m) const {
    os << m.channel << ',' << m.source.value() << ',';
    write_ip_list(os, m.trackers);
  }
  void operator()(const proto::TrackerQuery& m) const { os << m.channel; }
  void operator()(const proto::TrackerReply& m) const {
    os << m.channel << ',';
    write_ip_list(os, m.peers);
  }
  void operator()(const proto::PeerListQuery& m) const {
    os << m.channel << ',';
    write_ip_list(os, m.my_peers);
  }
  void operator()(const proto::PeerListReply& m) const {
    os << m.channel << ',';
    write_ip_list(os, m.peers);
  }
  void operator()(const proto::ConnectQuery& m) const { os << m.channel; }
  void operator()(const proto::ConnectReply& m) const {
    os << m.channel << ',' << (m.accepted ? 1 : 0) << ',';
    write_map(os, m.map);
  }
  void operator()(const proto::BufferMapAnnounce& m) const {
    os << m.channel << ',';
    write_map(os, m.map);
  }
  void operator()(const proto::DataQuery& m) const {
    os << m.channel << ',' << m.chunk;
  }
  void operator()(const proto::DataReply& m) const {
    os << m.channel << ',' << m.chunk << ',' << m.subpieces << ','
       << m.payload_bytes;
  }
  void operator()(const proto::Goodbye& m) const { os << m.channel; }
};

/// Tokenizer over the comma-separated tail of a record line.
class Fields {
 public:
  explicit Fields(std::istringstream& in) : in_(in) {}

  std::optional<std::uint64_t> u64() {
    std::string tok;
    if (!std::getline(in_, tok, ',')) return std::nullopt;
    try {
      std::size_t pos = 0;
      std::uint64_t v = std::stoull(tok, &pos);
      if (pos != tok.size()) return std::nullopt;
      return v;
    } catch (...) {
      return std::nullopt;
    }
  }

  std::optional<std::string> token() {
    std::string tok;
    if (!std::getline(in_, tok, ',')) return std::nullopt;
    return tok;
  }

  std::optional<std::vector<net::IpAddress>> ip_list() {
    auto n = u64();
    if (!n) return std::nullopt;
    std::vector<net::IpAddress> out;
    out.reserve(static_cast<std::size_t>(*n));
    for (std::uint64_t i = 0; i < *n; ++i) {
      auto v = u64();
      if (!v) return std::nullopt;
      out.emplace_back(static_cast<std::uint32_t>(*v));
    }
    return out;
  }

  std::optional<proto::BufferMap> map() {
    auto base = u64();
    auto bits = u64();
    auto hex = token();
    if (!base || !bits || !hex) return std::nullopt;
    proto::BufferMap m;
    m.base = *base;
    m.have.resize(static_cast<std::size_t>(*bits));
    for (std::size_t i = 0; i < m.have.size(); ++i) {
      const std::size_t byte = i / 4;
      if (byte >= hex->size()) return std::nullopt;
      const char c = (*hex)[byte];
      int nib;
      if (c >= '0' && c <= '9')
        nib = c - '0';
      else if (c >= 'a' && c <= 'f')
        nib = c - 'a' + 10;
      else
        return std::nullopt;
      m.have[i] = (nib >> (3 - static_cast<int>(i % 4))) & 1;
    }
    return m;
  }

 private:
  std::istringstream& in_;
};

std::optional<proto::Message> parse_payload(const std::string& type,
                                            Fields& f) {
  using namespace proto;
  auto channel = [&]() -> std::optional<ChannelId> {
    auto v = f.u64();
    if (!v) return std::nullopt;
    return static_cast<ChannelId>(*v);
  };

  if (type == "ChannelListQuery") return Message{ChannelListQuery{}};
  if (type == "ChannelListReply") {
    auto n = f.u64();
    if (!n) return std::nullopt;
    ChannelListReply m;
    for (std::uint64_t i = 0; i < *n; ++i) {
      auto c = f.u64();
      if (!c) return std::nullopt;
      m.channels.push_back(static_cast<ChannelId>(*c));
    }
    return Message{std::move(m)};
  }
  if (type == "JoinQuery") {
    auto c = channel();
    if (!c) return std::nullopt;
    return Message{JoinQuery{*c}};
  }
  if (type == "JoinReply") {
    auto c = channel();
    auto src = f.u64();
    if (!c || !src) return std::nullopt;
    auto trackers = f.ip_list();
    if (!trackers) return std::nullopt;
    return Message{JoinReply{*c, net::IpAddress(static_cast<std::uint32_t>(*src)),
                             std::move(*trackers)}};
  }
  if (type == "TrackerQuery") {
    auto c = channel();
    if (!c) return std::nullopt;
    return Message{TrackerQuery{*c}};
  }
  if (type == "TrackerReply") {
    auto c = channel();
    if (!c) return std::nullopt;
    auto peers = f.ip_list();
    if (!peers) return std::nullopt;
    return Message{TrackerReply{*c, std::move(*peers)}};
  }
  if (type == "PeerListQuery") {
    auto c = channel();
    if (!c) return std::nullopt;
    auto peers = f.ip_list();
    if (!peers) return std::nullopt;
    return Message{PeerListQuery{*c, std::move(*peers)}};
  }
  if (type == "PeerListReply") {
    auto c = channel();
    if (!c) return std::nullopt;
    auto peers = f.ip_list();
    if (!peers) return std::nullopt;
    return Message{PeerListReply{*c, std::move(*peers)}};
  }
  if (type == "ConnectQuery") {
    auto c = channel();
    if (!c) return std::nullopt;
    return Message{ConnectQuery{*c}};
  }
  if (type == "ConnectReply") {
    auto c = channel();
    auto accepted = f.u64();
    if (!c || !accepted) return std::nullopt;
    auto map = f.map();
    if (!map) return std::nullopt;
    return Message{ConnectReply{*c, *accepted != 0, std::move(*map)}};
  }
  if (type == "BufferMapAnnounce") {
    auto c = channel();
    if (!c) return std::nullopt;
    auto map = f.map();
    if (!map) return std::nullopt;
    return Message{BufferMapAnnounce{*c, std::move(*map)}};
  }
  if (type == "DataQuery") {
    auto c = channel();
    auto chunk = f.u64();
    if (!c || !chunk) return std::nullopt;
    return Message{DataQuery{*c, *chunk}};
  }
  if (type == "DataReply") {
    auto c = channel();
    auto chunk = f.u64();
    auto sub = f.u64();
    auto bytes = f.u64();
    if (!c || !chunk || !sub || !bytes) return std::nullopt;
    return Message{DataReply{*c, *chunk, static_cast<std::uint32_t>(*sub),
                             static_cast<std::uint32_t>(*bytes)}};
  }
  if (type == "Goodbye") {
    auto c = channel();
    if (!c) return std::nullopt;
    return Message{Goodbye{*c}};
  }
  return std::nullopt;
}

}  // namespace

std::size_t write_trace(std::ostream& os, const PacketTrace& trace) {
  for (const auto& rec : trace) {
    os << rec.time.as_micros() << ','
       << (rec.direction == net::Direction::kOutgoing ? "out" : "in") << ','
       << rec.local.value() << ',' << rec.remote.value() << ','
       << rec.wire_bytes << ',' << proto::message_name(rec.payload);
    std::ostringstream fields;
    std::visit(FieldWriter{fields}, rec.payload);
    const std::string tail = fields.str();
    if (!tail.empty()) os << ',' << tail;
    os << '\n';
  }
  return trace.size();
}

bool write_trace_file(const std::string& path, const PacketTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_trace(out, trace);
  return static_cast<bool>(out);
}

std::optional<TraceRecord> parse_record(const std::string& line) {
  std::istringstream in(line);
  Fields f(in);
  auto time_us = [&]() -> std::optional<std::int64_t> {
    auto tok = f.token();
    if (!tok) return std::nullopt;
    try {
      return std::stoll(*tok);
    } catch (...) {
      return std::nullopt;
    }
  }();
  auto dir = f.token();
  auto local = f.u64();
  auto remote = f.u64();
  auto bytes = f.u64();
  auto type = f.token();
  if (!time_us || !dir || !local || !remote || !bytes || !type)
    return std::nullopt;
  if (*dir != "out" && *dir != "in") return std::nullopt;

  auto payload = parse_payload(*type, f);
  if (!payload) return std::nullopt;

  TraceRecord rec;
  rec.time = sim::Time::micros(*time_us);
  rec.direction =
      *dir == "out" ? net::Direction::kOutgoing : net::Direction::kIncoming;
  rec.local = net::IpAddress(static_cast<std::uint32_t>(*local));
  rec.remote = net::IpAddress(static_cast<std::uint32_t>(*remote));
  rec.wire_bytes = *bytes;
  rec.payload = std::move(*payload);
  return rec;
}

PacketTrace read_trace(std::istream& is, std::size_t* dropped) {
  PacketTrace trace;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto rec = parse_record(line);
    if (rec)
      trace.push_back(std::move(*rec));
    else
      ++bad;
  }
  if (dropped) *dropped = bad;
  return trace;
}

std::optional<PacketTrace> read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_trace(in);
}

}  // namespace ppsim::capture
