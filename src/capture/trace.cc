#include "capture/trace.h"

namespace ppsim::capture {

std::shared_ptr<PacketTrace> attach_sniffer(proto::PeerNetwork& network,
                                            net::IpAddress ip) {
  auto trace = std::make_shared<PacketTrace>();
  network.set_tap(
      ip, [trace, &network](net::Direction dir, net::IpAddress local,
                            net::IpAddress remote, const proto::Message& m,
                            std::uint64_t bytes) {
        trace->push_back(
            TraceRecord{network.now(), dir, local, remote, bytes, m});
      });
  return trace;
}

}  // namespace ppsim::capture
