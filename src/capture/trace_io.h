#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "capture/trace.h"

namespace ppsim::capture {

/// Serialization of packet traces to a line-based text format, so captures
/// can be archived and re-analyzed without re-running the simulation (the
/// simulated analogue of saving the paper's 130 GB of Wireshark captures).
///
/// Format: one record per line,
///
///   <time_us>,<dir>,<local>,<remote>,<bytes>,<type>,<fields...>
///
/// where <dir> is "out"/"in", <type> is the message name, and <fields> are
/// type-specific (chunk/subpieces/payload for data, the listed addresses
/// for list replies, etc.). The format is self-contained: read_trace
/// reconstructs records exactly (round-trip identity), which the tests
/// assert.

/// Writes the whole trace; returns the number of records written.
std::size_t write_trace(std::ostream& os, const PacketTrace& trace);

/// Convenience: writes to a file, returning false on I/O failure.
bool write_trace_file(const std::string& path, const PacketTrace& trace);

/// Parses one serialized record; nullopt on malformed input.
std::optional<TraceRecord> parse_record(const std::string& line);

/// Reads records until EOF; malformed lines are skipped and counted in
/// `dropped` when provided.
PacketTrace read_trace(std::istream& is, std::size_t* dropped = nullptr);

std::optional<PacketTrace> read_trace_file(const std::string& path);

}  // namespace ppsim::capture
