#include "capture/analyzer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "analysis/cdf.h"
#include "analysis/stats.h"

namespace ppsim::capture {

namespace {

double avg_for_group(const std::vector<ResponseSample>& samples,
                     net::ResponseGroup g) {
  double acc = 0;
  std::uint64_t n = 0;
  for (const auto& s : samples) {
    if (s.group == g) {
      acc += s.response_seconds;
      ++n;
    }
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

}  // namespace

double TraceAnalysis::avg_list_response(net::ResponseGroup g) const {
  return avg_for_group(list_responses, g);
}

double TraceAnalysis::avg_data_response(net::ResponseGroup g) const {
  return avg_for_group(data_responses, g);
}

std::uint64_t TraceAnalysis::response_count(
    const std::vector<ResponseSample>& v, net::ResponseGroup g) const {
  return static_cast<std::uint64_t>(
      std::count_if(v.begin(), v.end(),
                    [g](const ResponseSample& s) { return s.group == g; }));
}

std::vector<double> TraceAnalysis::request_rank_series() const {
  std::vector<double> out;
  out.reserve(peers.size());
  for (const auto& p : peers)
    out.push_back(static_cast<double>(p.data_requests_matched));
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

std::vector<double> TraceAnalysis::contribution_rank_series() const {
  std::vector<double> out;
  out.reserve(peers.size());
  for (const auto& p : peers)
    out.push_back(static_cast<double>(p.bytes_contributed));
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

double TraceAnalysis::top_request_share(double fraction) const {
  return analysis::top_share(request_rank_series(), fraction);
}

double TraceAnalysis::top_contribution_share(double fraction) const {
  return analysis::top_share(contribution_rank_series(), fraction);
}

analysis::StretchedExpFit TraceAnalysis::request_se_fit() const {
  return analysis::fit_stretched_exponential(request_rank_series());
}

analysis::ZipfFit TraceAnalysis::request_zipf_fit() const {
  return analysis::fit_zipf(request_rank_series());
}

double TraceAnalysis::rtt_request_correlation() const {
  std::vector<double> log_req, log_rtt;
  for (const auto& p : peers) {
    if (p.data_requests_matched == 0 || p.min_response_seconds <= 0) continue;
    log_req.push_back(std::log(static_cast<double>(p.data_requests_matched)));
    log_rtt.push_back(std::log(p.min_response_seconds));
  }
  return analysis::pearson(log_req, log_rtt);
}

std::vector<TraceAnalysis::LocalityPoint> TraceAnalysis::locality_over_time(
    net::IspCategory own, sim::Time bin) const {
  std::vector<LocalityPoint> out;
  if (data_events.empty() || bin <= sim::Time::zero()) return out;
  const sim::Time t0 = data_events.front().request_time;
  LocalityPoint current;
  current.bin_start = t0;
  std::uint64_t own_bytes = 0;
  auto flush = [&] {
    if (current.bytes > 0)
      current.locality =
          static_cast<double>(own_bytes) / static_cast<double>(current.bytes);
    out.push_back(current);
  };
  for (const auto& ev : data_events) {
    while (ev.request_time >= current.bin_start + bin) {
      flush();
      current = LocalityPoint{};
      current.bin_start = out.back().bin_start + bin;
      own_bytes = 0;
    }
    current.bytes += ev.bytes;
    if (ev.server == own) own_bytes += ev.bytes;
  }
  flush();
  return out;
}

void merge_into(TraceAnalysis& dst, const TraceAnalysis& src) {
  for (std::size_t i = 0; i < net::kNumIspCategories; ++i) {
    dst.returned_addresses.counts[i] += src.returned_addresses.counts[i];
    dst.data_transmissions.counts[i] += src.data_transmissions.counts[i];
    dst.data_bytes.counts[i] += src.data_bytes.counts[i];
    dst.unique_data_peers.counts[i] += src.unique_data_peers.counts[i];
  }
  dst.unique_listed_ips += src.unique_listed_ips;
  dst.lists_from_peers += src.lists_from_peers;
  dst.lists_from_trackers += src.lists_from_trackers;
  dst.list_requests_unanswered += src.list_requests_unanswered;

  for (const auto& row : src.list_sources) {
    auto it = std::find_if(dst.list_sources.begin(), dst.list_sources.end(),
                           [&](const ListSourceRow& r) {
                             return r.replier_category == row.replier_category &&
                                    r.replier_is_tracker ==
                                        row.replier_is_tracker;
                           });
    if (it == dst.list_sources.end()) {
      dst.list_sources.push_back(row);
    } else {
      for (std::size_t i = 0; i < net::kNumIspCategories; ++i)
        it->listed.counts[i] += row.listed.counts[i];
    }
  }

  auto by_request_time = [](const ResponseSample& a, const ResponseSample& b) {
    return a.request_time < b.request_time;
  };
  dst.list_responses.insert(dst.list_responses.end(),
                            src.list_responses.begin(),
                            src.list_responses.end());
  std::sort(dst.list_responses.begin(), dst.list_responses.end(),
            by_request_time);
  dst.data_responses.insert(dst.data_responses.end(),
                            src.data_responses.begin(),
                            src.data_responses.end());
  std::sort(dst.data_responses.begin(), dst.data_responses.end(),
            by_request_time);

  dst.data_events.insert(dst.data_events.end(), src.data_events.begin(),
                         src.data_events.end());
  std::sort(dst.data_events.begin(), dst.data_events.end(),
            [](const DataEvent& a, const DataEvent& b) {
              return a.request_time < b.request_time;
            });

  dst.peers.insert(dst.peers.end(), src.peers.begin(), src.peers.end());
  std::sort(dst.peers.begin(), dst.peers.end(),
            [](const PeerActivity& a, const PeerActivity& b) {
              if (a.data_requests_matched != b.data_requests_matched)
                return a.data_requests_matched > b.data_requests_matched;
              return a.ip < b.ip;
            });
}

TraceAnalysis analyze_trace(
    const PacketTrace& trace, const net::AsnDatabase& asn_db,
    net::IpAddress probe,
    const std::unordered_set<net::IpAddress>& tracker_ips) {
  TraceAnalysis out;

  // Outstanding peer-list requests: latest request time per remote (the
  // paper matches each reply to the latest request to the same address).
  std::unordered_map<net::IpAddress, sim::Time> list_outstanding;
  // Outstanding data requests keyed by (remote, chunk).
  struct DataKey {
    net::IpAddress ip;
    proto::ChunkSeq chunk;
    bool operator==(const DataKey&) const = default;
  };
  struct DataKeyHash {
    std::size_t operator()(const DataKey& k) const {
      return std::hash<net::IpAddress>{}(k.ip) ^
             (std::hash<std::uint64_t>{}(k.chunk) * 0x9E3779B97F4A7C15ULL);
    }
  };
  std::unordered_map<DataKey, sim::Time, DataKeyHash> data_outstanding;

  std::unordered_set<net::IpAddress> listed_unique;
  std::unordered_map<net::IpAddress, PeerActivity> activity;
  // (replier category, is_tracker) -> row index in out.list_sources
  std::map<std::pair<int, bool>, std::size_t> row_index;

  auto category_of = [&](net::IpAddress ip) {
    return asn_db.category_or_foreign(ip);
  };

  auto record_listed = [&](net::IpAddress replier, bool replier_is_tracker,
                           const std::vector<net::IpAddress>& ips) {
    const net::IspCategory replier_cat = category_of(replier);
    const auto key = std::make_pair(static_cast<int>(replier_cat),
                                    replier_is_tracker);
    auto it = row_index.find(key);
    if (it == row_index.end()) {
      it = row_index.emplace(key, out.list_sources.size()).first;
      out.list_sources.push_back(
          ListSourceRow{replier_cat, replier_is_tracker, {}});
    }
    ListSourceRow& row = out.list_sources[it->second];
    for (const auto& ip : ips) {
      const net::IspCategory c = category_of(ip);
      out.returned_addresses.add(c);
      row.listed.add(c);
      listed_unique.insert(ip);
    }
  };

  for (const auto& rec : trace) {
    if (rec.direction == net::Direction::kOutgoing) {
      if (std::holds_alternative<proto::PeerListQuery>(rec.payload)) {
        auto [it, inserted] = list_outstanding.try_emplace(rec.remote,
                                                           rec.time);
        if (!inserted) {
          // Previous request was never answered; the newer one replaces it.
          ++out.list_requests_unanswered;
          it->second = rec.time;
        }
      } else if (const auto* dq =
                     std::get_if<proto::DataQuery>(&rec.payload)) {
        data_outstanding[DataKey{rec.remote, dq->chunk}] = rec.time;
      }
      continue;
    }

    // Incoming records.
    if (const auto* tr = std::get_if<proto::TrackerReply>(&rec.payload)) {
      ++out.lists_from_trackers;
      record_listed(rec.remote, /*replier_is_tracker=*/true, tr->peers);
    } else if (const auto* plr =
                   std::get_if<proto::PeerListReply>(&rec.payload)) {
      ++out.lists_from_peers;
      record_listed(rec.remote, tracker_ips.contains(rec.remote), plr->peers);
      auto it = list_outstanding.find(rec.remote);
      if (it != list_outstanding.end()) {
        out.list_responses.push_back(ResponseSample{
            it->second, (rec.time - it->second).as_seconds(), rec.remote,
            net::response_group(category_of(rec.remote))});
        list_outstanding.erase(it);
      }
    } else if (const auto* dr = std::get_if<proto::DataReply>(&rec.payload)) {
      auto it = data_outstanding.find(DataKey{rec.remote, dr->chunk});
      if (it == data_outstanding.end()) continue;  // unsolicited/duplicate
      const double resp = (rec.time - it->second).as_seconds();
      const net::IspCategory c = category_of(rec.remote);
      out.data_transmissions.add(c);
      out.data_bytes.add(c, dr->payload_bytes);
      out.data_responses.push_back(ResponseSample{
          it->second, resp, rec.remote, net::response_group(c)});
      out.data_events.push_back(DataEvent{it->second, c, dr->payload_bytes});
      auto [ait, fresh] = activity.try_emplace(rec.remote);
      PeerActivity& act = ait->second;
      if (fresh) {
        act.ip = rec.remote;
        act.category = c;
      }
      ++act.data_requests_matched;
      act.bytes_contributed += dr->payload_bytes;
      if (act.min_response_seconds < 0 || resp < act.min_response_seconds)
        act.min_response_seconds = resp;
      data_outstanding.erase(it);
    }
  }

  out.list_requests_unanswered +=
      static_cast<std::uint64_t>(list_outstanding.size());
  out.unique_listed_ips = static_cast<std::uint64_t>(listed_unique.size());

  out.peers.reserve(activity.size());
  for (auto& [ip, act] : activity) {
    out.unique_data_peers.add(act.category);
    out.peers.push_back(std::move(act));
  }
  std::sort(out.peers.begin(), out.peers.end(),
            [](const PeerActivity& a, const PeerActivity& b) {
              if (a.data_requests_matched != b.data_requests_matched)
                return a.data_requests_matched > b.data_requests_matched;
              return a.ip < b.ip;
            });

  // Response samples in request-time order ("requests along time").
  auto by_request_time = [](const ResponseSample& a, const ResponseSample& b) {
    return a.request_time < b.request_time;
  };
  std::sort(out.list_responses.begin(), out.list_responses.end(),
            by_request_time);
  std::sort(out.data_responses.begin(), out.data_responses.end(),
            by_request_time);
  std::sort(out.data_events.begin(), out.data_events.end(),
            [](const DataEvent& a, const DataEvent& b) {
              return a.request_time < b.request_time;
            });

  (void)probe;
  return out;
}

}  // namespace ppsim::capture
