#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "analysis/fit.h"
#include "capture/trace.h"
#include "net/asn_db.h"
#include "net/isp.h"

namespace ppsim::capture {

/// Counts bucketed by the paper's five reporting ISPs.
struct IspHistogram {
  std::array<std::uint64_t, net::kNumIspCategories> counts{};

  void add(net::IspCategory c, std::uint64_t n = 1) {
    counts[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t get(net::IspCategory c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }
  double share(net::IspCategory c) const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(get(c)) / static_cast<double>(t);
  }
};

/// One row of the paper's Figure 2(b)-5(b): which ISPs the addresses
/// returned by a given class of replier belong to. Repliers are classed by
/// their own ISP and by whether they are a tracker server ("CNC_s") or a
/// normal peer ("CNC_p").
struct ListSourceRow {
  net::IspCategory replier_category = net::IspCategory::kTele;
  bool replier_is_tracker = false;
  IspHistogram listed;
};

/// Response-time measurement for one matched request/reply exchange.
struct ResponseSample {
  sim::Time request_time;
  double response_seconds = 0;
  net::IpAddress remote;
  net::ResponseGroup group = net::ResponseGroup::kOther;
};

/// Per-remote-peer activity aggregated over the capture, the substrate of
/// Figures 11-18.
struct PeerActivity {
  net::IpAddress ip;
  net::IspCategory category = net::IspCategory::kForeign;
  std::uint64_t data_requests_matched = 0;  // matched request/reply pairs
  std::uint64_t bytes_contributed = 0;
  double min_response_seconds = -1;  // RTT estimate (min app-level latency)
};

/// One matched data transmission, kept for time-resolved analyses.
struct DataEvent {
  sim::Time request_time;
  net::IspCategory server = net::IspCategory::kForeign;
  std::uint32_t bytes = 0;
};

/// Everything the paper's evaluation extracts from one probe's capture.
struct TraceAnalysis {
  // --- Figure (a) panels: returned addresses by ISP, duplicates kept ---
  IspHistogram returned_addresses;
  std::uint64_t unique_listed_ips = 0;

  // --- Figure (b) panels: returned addresses by replier class ---
  std::vector<ListSourceRow> list_sources;
  std::uint64_t lists_from_peers = 0;    // peer-list replies received
  std::uint64_t lists_from_trackers = 0; // tracker replies received

  // --- Figure (c) panels: data transmissions and bytes by ISP ---
  IspHistogram data_transmissions;
  IspHistogram data_bytes;

  // --- Figures 7-10: peer-list response times ---
  std::vector<ResponseSample> list_responses;  // ordered by request time
  std::uint64_t list_requests_unanswered = 0;

  // --- Table 1: data-request response times ---
  std::vector<ResponseSample> data_responses;  // ordered by request time

  // --- Figures 11-18 substrate ---
  std::vector<PeerActivity> peers;  // sorted by data_requests desc
  IspHistogram unique_data_peers;

  // --- time-resolved data plane (matched transmissions, request order) ---
  std::vector<DataEvent> data_events;

  // Derived conveniences -------------------------------------------------

  /// Fraction of downloaded bytes served by peers in `own` (Figure 6's
  /// "traffic locality").
  double byte_locality(net::IspCategory own) const {
    return data_bytes.share(own);
  }

  double transmission_locality(net::IspCategory own) const {
    return data_transmissions.share(own);
  }

  double avg_list_response(net::ResponseGroup g) const;
  double avg_data_response(net::ResponseGroup g) const;
  std::uint64_t response_count(const std::vector<ResponseSample>& v,
                               net::ResponseGroup g) const;

  /// Ranked data-request counts (descending), for distribution fits.
  std::vector<double> request_rank_series() const;
  /// Ranked byte contributions (descending).
  std::vector<double> contribution_rank_series() const;

  /// Share of matched data requests made to the top `fraction` of peers.
  double top_request_share(double fraction) const;
  /// Share of bytes contributed by the top `fraction` of peers.
  double top_contribution_share(double fraction) const;

  analysis::StretchedExpFit request_se_fit() const;
  analysis::ZipfFit request_zipf_fit() const;

  /// Pearson correlation between log(#requests) and log(RTT estimate)
  /// across peers with at least one matched exchange (Figures 15-18).
  double rtt_request_correlation() const;

  /// Locality evolution within the capture: the fraction of downloaded
  /// bytes served from `own` per time bin. Shows how fast the emergent
  /// clustering converges after join (not in the paper — their captures
  /// start after convergence — but essential for calibrating ours).
  struct LocalityPoint {
    sim::Time bin_start;
    double locality = 0;      // own-ISP share of bytes in this bin
    std::uint64_t bytes = 0;  // total bytes in the bin
  };
  std::vector<LocalityPoint> locality_over_time(net::IspCategory own,
                                                sim::Time bin) const;
};

/// Merges another capture's analysis into `dst`, as if the two captures
/// were measurement sessions of the same deployment on different days
/// (counts add, sample series concatenate, rank tables recombine). Peer
/// identities are not deduplicated across captures — separate days see
/// separate peer populations.
void merge_into(TraceAnalysis& dst, const TraceAnalysis& src);

/// Runs the paper's trace-analysis methodology over a probe capture:
/// request/reply matching by address (and chunk sequence for data), latest-
/// request matching for peer lists, ISP attribution via the ASN database.
/// `tracker_ips` distinguishes tracker servers from normal peers in the
/// Figure (b) breakdown.
TraceAnalysis analyze_trace(const PacketTrace& trace,
                            const net::AsnDatabase& asn_db,
                            net::IpAddress probe,
                            const std::unordered_set<net::IpAddress>& tracker_ips);

}  // namespace ppsim::capture
