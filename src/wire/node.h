#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/isp.h"
#include "proto/channel.h"
#include "proto/counters.h"
#include "sim/time.h"
#include "wire/udp.h"

namespace ppsim::wire {

/// What one ppsim-node process runs. A deployment is one kHub (bootstrap +
/// tracker, two IPs in one process), one kSource, and N kPeer processes,
/// mirroring the sim experiment's infrastructure split.
enum class NodeRole : std::uint8_t { kHub = 0, kSource = 1, kPeer = 2 };

/// Configuration of one node process (tools/ppsim_node.cc maps CLI flags
/// onto this 1:1; docs/WIRE.md documents the flags).
struct NodeConfig {
  NodeRole role = NodeRole::kPeer;
  net::IpAddress ip;         // this node's address (all roles)
  net::IpAddress bootstrap;  // hub binds it via `ip`; peers join through it
  net::IpAddress tracker;    // hub binds it; the source registers with it
  net::IpAddress source;     // hub advertises it as the channel's playlink
  std::uint16_t port = 0;    // shared deployment UDP port
  std::uint16_t epoch = 1;   // ppsim-wire-v1 channel epoch
  proto::ChannelSpec channel;  // must agree across the deployment
  sim::Time duration;        // zero: run until the stop callback fires
  std::uint64_t seed = 1;

  // Observability sinks, the same surface the sim CLI exposes; empty paths
  // disable a sink. All files are flushed on graceful shutdown (SIGINT/
  // SIGTERM included), never left mid-line.
  std::string metrics_out;
  std::string samples_out;
  std::string trace_out;
  sim::Time sample_period = sim::Time::seconds(5);

  // Fleet telemetry (docs/OBSERVABILITY.md, "Fleet telemetry"): when
  // `telemetry_to` holds an "IP:PORT" collector address, the node ships a
  // ppsim-telemetry-v1 snapshot every `telemetry_period` and a final full
  // ("closing") snapshot on shutdown. Empty disables the plane entirely.
  std::string telemetry_to;
  sim::Time telemetry_period = sim::Time::seconds(2);
};

/// End-of-run summary, printed by ppsim-node and asserted by the loopback
/// smoke harness (tools/wire_smoke.py).
struct NodeReport {
  proto::PeerCounters counters;  // peer role; zero otherwise
  UdpTransport::Stats transport;
  UdpTransport::RxErrors rx_errors;
  double continuity = 0.0;            // peer role
  std::uint64_t chunks_produced = 0;  // source role
  std::uint64_t requests_served = 0;  // source role
  std::uint64_t queries_served = 0;   // hub role (tracker)
  std::uint64_t joins_served = 0;     // hub role (bootstrap)
  std::uint64_t samples_recorded = 0;
  /// Same-ISP share of DataReply payload bytes this node received.
  double delivered_locality = 0.0;
  /// Telemetry plane: seq of the last datagram shipped (0 when disabled or
  /// nothing sent) and datagrams handed to the socket. The collector's
  /// per-node last_seq must match telemetry_seq after a graceful shutdown —
  /// the smoke harness pins exactly that.
  std::uint64_t telemetry_seq = 0;
  std::uint64_t telemetry_datagrams = 0;
};

/// The loopback deployment topology: one /16 of 127.0.0.0/8 per paper
/// reporting category (127.1/16 TELE, 127.2/16 CNC, 127.3/16 CER,
/// 127.4/16 OTHER_CN, 127.5/16 FOREIGN), so a node's ISP attribution is a
/// pure function of the address it binds — the wire analogue of the sim's
/// prefix-allocated standard_topology().
net::IspRegistry loopback_registry();

/// Runs one node until `stop()` returns true or `config.duration` elapses
/// (when nonzero). Single-threaded: simulator events, socket poll and
/// handler dispatch alternate on the caller's thread, so `stop` is polled
/// every loop iteration (signal handlers set a flag; they never run node
/// code). Flushes every configured sink before returning.
NodeReport run_node(const NodeConfig& config,
                    const std::function<bool()>& stop);

}  // namespace ppsim::wire
