#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "net/ip.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "sim/time.h"
#include "wire/telemetry.h"

namespace ppsim::wire {

/// Deterministic fleet folds, shared verbatim between the live collector
/// and ppsim-analyze's offline `--fleet` mode — the same code path over
/// the same per-node inputs is what makes the collector's artifacts
/// byte-identical to an offline fold of the per-node sink files.
///
/// Metrics fold, nodes visited in ascending IP order: every counter lands
/// twice — once labeled node=<ip> (the per-node view) and once unlabeled
/// (the fleet total, counters summed); gauges land node-labeled only (a
/// fleet "total" of last-write-wins values is meaningless); histograms
/// land node-labeled and merged into an unlabeled total.
void fold_fleet_metrics(
    const std::map<net::IpAddress, const obs::MetricsRegistry*>& nodes,
    obs::MetricsRegistry* out);

/// Matrix fold over each node's latest cumulative sample: byte matrices
/// and interval/alive counts sum elementwise, t is the max across nodes,
/// shares are recomputed from the summed matrix, and the per-peer means
/// (neighbor same-ISP share, continuity) are alive-weighted, accumulated
/// in ascending IP order so the floating-point fold is reproducible.
/// Returns false (and leaves *out zeroed) when `nodes` is empty.
bool fold_fleet_matrix(
    const std::map<net::IpAddress, const obs::TrafficSample*>& nodes,
    obs::TrafficSample* out);

/// The ppsim-collect ingest core: dedup, per-node state, heartbeat-timeout
/// loss detection, live fleet time series, final fold. Transport-free and
/// clock-free — the caller (tools/ppsim_collect.cc) owns the socket and
/// feeds wall time in, so the core is unit-testable without sockets.
class Collector {
 public:
  enum class NodeStatus : std::uint8_t { kUp = 0, kClosed = 1, kLost = 2 };

  struct Config {
    /// A node silent for longer than this is declared lost (unless its
    /// closing snapshot already arrived).
    sim::Time heartbeat_timeout = sim::Time::seconds(10);
    /// Live fleet-level sample stream (write_sample_ndjson rows, one per
    /// advance of the fleet's sample clock); null disables.
    std::ostream* fleet_samples_out = nullptr;
    /// Node lifecycle events (`event=node-up|node-closed|node-lost|
    /// node-recovered node=<ip> ...` lines); null disables.
    std::ostream* events_out = nullptr;
  };

  explicit Collector(Config config) : config_(config) {}

  /// Ingests one telemetry datagram received at wall time `now`. Returns
  /// true when the datagram was accepted (well-formed heartbeat, seq not
  /// already seen); duplicates and malformed datagrams are counted and
  /// dropped whole.
  bool ingest(const std::string& datagram, sim::Time now);

  /// Periodic work: heartbeat-timeout scan and live fleet-sample
  /// emission. Call on the receive loop's idle ticks.
  void tick(sim::Time now);

  /// One human-readable fleet summary line (nodes up/closed/lost,
  /// continuity floor, intra-ISP share, aggregate RSS and event rate).
  void write_summary(std::ostream& os, sim::Time now) const;

  /// Final artifacts, restricted to nodes whose closing snapshot arrived —
  /// the only nodes whose own sink files are complete, so the offline
  /// fold sees the same population.
  void fold_closed_metrics(obs::MetricsRegistry* out) const;
  bool fold_closed_matrix(obs::TrafficSample* out) const;

  /// Per-node final lines (`node=<ip> role=... status=... last_seq=...`),
  /// ascending IP order; the smoke harness matches last_seq against each
  /// node's reported telemetry_seq.
  void write_node_reports(std::ostream& os) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t closed_count() const;
  std::size_t lost_count() const;
  std::uint64_t datagrams_accepted() const { return accepted_; }
  std::uint64_t duplicates_dropped() const { return dups_; }
  std::uint64_t malformed_dropped() const { return malformed_; }
  std::uint64_t unknown_records() const { return unknown_records_; }
  std::uint64_t metric_rows_applied() const { return metric_rows_; }
  std::uint64_t sample_rows_applied() const { return sample_rows_; }

 private:
  struct Node {
    std::string role;
    std::uint16_t epoch = 0;
    std::uint64_t last_seq = 0;
    sim::Time last_heard = sim::Time::zero();
    sim::Time uptime = sim::Time::zero();
    NodeStatus status = NodeStatus::kUp;
    obs::MetricsRegistry metrics;
    bool has_sample = false;
    obs::TrafficSample latest;  // the max-t sample seen
    std::uint64_t datagrams = 0;
  };

  void emit_event(const char* event, net::IpAddress ip, const Node& node);

  Config config_;
  // Ascending IP order — the pinned fold order. Entries are stable
  // (std::map), which Node's non-movable MetricsRegistry relies on.
  std::map<net::IpAddress, Node> nodes_;
  sim::Time last_fleet_t_ = sim::Time::micros(-1);
  std::uint64_t accepted_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t unknown_records_ = 0;
  std::uint64_t metric_rows_ = 0;
  std::uint64_t sample_rows_ = 0;
};

}  // namespace ppsim::wire
