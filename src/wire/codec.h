#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "proto/message.h"

namespace ppsim::wire {

/// ppsim-wire-v1: the versioned binary packet format carried in each UDP
/// datagram of the real-wire deployment mode (docs/WIRE.md has the byte-
/// level table). Every datagram is
///
///   header (8 bytes, big-endian)          body (variant-specific)
///   +-------+-----+-----+-------+-----+   +---------------------+
///   | magic | ver | tag | epoch | aux |   | ...                 |
///   |  u16  | u8  | u8  |  u16  | u16 |   |                     |
///   +-------+-----+-----+-------+-----+   +---------------------+
///
/// and its total length is *exactly* `proto::wire_size(m) - kIpUdpHeader`:
/// the sim's wire-size model already budgets the 28-byte IP+UDP header, so
/// the encoded datagram fills the remaining payload budget byte-for-byte.
/// That identity is the sim/wire contract — a packet on the real wire
/// occupies the same link bytes the simulator charged for it — and both
/// encode and decode assert it. `SpanContext` is trace metadata, never
/// encoded; decoded messages always carry a zero span.
inline constexpr std::uint16_t kMagic = 0x5057;  // "PW"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// IP+UDP header bytes proto::wire_size() budgets on top of the payload.
inline constexpr std::uint64_t kIpUdpHeader = 28;
/// Largest datagram the transport will encode or accept (a DataReply for a
/// jumbo chunk still fits far below this).
inline constexpr std::size_t kMaxDatagram = 60000;

/// Message tag carried in the header, one per proto::Message variant, value
/// == the variant's index in the proto::Message std::variant. The audit's
/// completeness pass cross-checks this enum, the encode/decode branches and
/// the docs/WIRE.md packet table against the variant list in both
/// directions (tools/lint/pass_completeness.cc).
enum class Tag : std::uint8_t {
  kChannelListQuery = 0,
  kChannelListReply = 1,
  kJoinQuery = 2,
  kJoinReply = 3,
  kTrackerQuery = 4,
  kTrackerReply = 5,
  kPeerListQuery = 6,
  kPeerListReply = 7,
  kConnectQuery = 8,
  kConnectReply = 9,
  kBufferMapAnnounce = 10,
  kDataQuery = 11,
  kDataReply = 12,
  kGoodbye = 13,
};
inline constexpr std::uint8_t kNumTags = 14;

/// Decode (and one encode) failure codes. Distinct per failure shape so
/// the transport's RxErrors counters and the fuzz tests can tell a short
/// read from a foreign packet from a stale-version packet.
enum class WireError : std::uint8_t {
  kOk = 0,
  kTruncated = 1,      // shorter than the header or the body's fixed part
  kBadMagic = 2,       // first two bytes are not kMagic
  kBadVersion = 3,     // version byte != kVersion
  kBadEpoch = 4,       // channel epoch does not match this deployment
  kBadTag = 5,         // tag beyond the variant list
  kBadLength = 6,      // body length inconsistent with the tag's layout
  kBadAux = 7,         // aux bits set that the tag does not define
  kBadReserved = 8,    // reserved/padding bytes not zero
  kUnencodable = 9,    // encode only: message shape has no v1 encoding
};

std::string_view wire_error_name(WireError e);

/// Encodes `m` into a ppsim-wire-v1 datagram appended to *out (cleared
/// first). Returns kOk, or kUnencodable for shapes the format cannot carry
/// (a DataReply whose payload_bytes/subpieces budget is smaller than its
/// fixed fields — the protocol never produces one). On kOk the datagram
/// length equals proto::wire_size(m) - kIpUdpHeader, asserted.
WireError encode_message(const proto::Message& m, std::uint16_t epoch,
                         std::vector<std::uint8_t>* out);

struct DecodeResult {
  WireError error = WireError::kOk;
  proto::Message message;  // value only meaningful when error == kOk
};

/// Decodes one datagram. Never throws and never reads out of bounds for
/// any input (the fuzz tests pin this); every rejection carries a distinct
/// WireError. On success re-derives proto::wire_size(message) and verifies
/// it equals len + kIpUdpHeader, so a decoded message is always one the
/// sim would have charged identically for.
DecodeResult decode_message(const std::uint8_t* data, std::size_t len,
                            std::uint16_t epoch);

}  // namespace ppsim::wire
