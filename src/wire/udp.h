#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string_view>

#include "net/transport.h"
#include "proto/host.h"
#include "proto/message.h"
#include "sim/time.h"
#include "wire/codec.h"

namespace ppsim::wire {

/// Real-socket implementation of the proto::PeerTransport delivery
/// contract (net::DatagramTransport<proto::Message>) over nonblocking UDP.
///
/// Addressing is the identity mapping: a protocol net::IpAddress *is* the
/// node's real IPv4 address, and every node of a deployment binds the same
/// shared UDP port (Config::port). The loopback harness runs whole swarms
/// on 127.0.0.0/8 this way — Linux answers for every 127.x.y.z without
/// interface configuration — and a LAN deployment uses one host per IP.
///
/// Each attach() binds one nonblocking socket; poll() drains every socket
/// into a bounded receive queue (decode happens here; rejected datagrams
/// land in RxErrors, never in a handler); dispatch() invokes handlers on
/// the caller's thread. Everything is single-threaded: the node's run loop
/// alternates simulator events, poll() and dispatch(), so handlers observe
/// the same no-concurrency guarantee the sim gives them.
///
/// Drop accounting maps socket outcomes onto the sim's Stats buckets
/// (docs/WIRE.md "Drop accounting"): local send failures are uplink_drops,
/// receive-queue overflow is downlink_drops, a handler-less destination at
/// dispatch time is dead_destination_drops. Codec rejections are counted
/// separately in RxErrors — they are not packets the *protocol* lost, and
/// keeping them out of Stats preserves the one-bucket-per-packet audit.
class UdpTransport final : public proto::PeerTransport {
 public:
  struct Config {
    std::uint16_t port = 0;        // shared deployment port; != 0 to bind
    std::uint16_t epoch = 1;       // channel epoch stamped into every packet
    std::size_t rx_queue_limit = 4096;
    int socket_buffer_bytes = 1 << 20;  // SO_RCVBUF/SO_SNDBUF request
  };

  /// Datagrams rejected by the codec before reaching any handler, one
  /// counter per WireError. A healthy same-version deployment keeps all of
  /// these at zero; bad_epoch/bad_version spikes mean mixed deployments.
  struct RxErrors {
    std::uint64_t truncated = 0;
    std::uint64_t bad_magic = 0;
    std::uint64_t bad_version = 0;
    std::uint64_t bad_epoch = 0;
    std::uint64_t bad_tag = 0;
    std::uint64_t bad_length = 0;
    std::uint64_t bad_aux = 0;
    std::uint64_t bad_reserved = 0;
    std::uint64_t total() const {
      return truncated + bad_magic + bad_version + bad_epoch + bad_tag +
             bad_length + bad_aux + bad_reserved;
    }
  };

  explicit UdpTransport(Config config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // --- proto::PeerTransport ---
  /// Binds a nonblocking UDP socket on (ip, Config::port). The isp/category
  /// /profile fields exist for the sim's models and are accepted-but-unused
  /// here: the real link enforces its own capacity.
  void attach(net::IpAddress ip, net::IspId isp, net::IspCategory category,
              const net::AccessProfile& profile, Handler handler) override;
  void detach(net::IpAddress ip) override;
  bool attached(net::IpAddress ip) const override;
  bool send(net::IpAddress from, net::IpAddress to, proto::Message payload,
            std::uint64_t wire_bytes) override;
  const Stats& stats() const override { return stats_; }

  // --- wire-side surface (the node's run loop) ---
  /// Waits up to timeout_ms for any socket to become readable, then drains
  /// all of them into the receive queue. Returns datagrams enqueued.
  int poll(int timeout_ms);

  /// Delivers up to max_deliveries queued datagrams to their handlers,
  /// stamping `now` as the Delivery receive time (Delivery::sent_at is
  /// unused by the protocol entities; the wire cannot know the sender's
  /// clock). Returns datagrams delivered.
  int dispatch(sim::Time now, int max_deliveries = 1 << 20);

  const RxErrors& rx_errors() const { return rx_errors_; }
  std::size_t rx_queue_depth() const { return rx_queue_.size(); }
  std::size_t host_count() const { return sockets_.size(); }

  /// Observer invoked once per delivered datagram, after the handler's
  /// host is resolved and before the handler runs — the wire counterpart
  /// of the sim Network's global tap, used for per-ISP traffic accounting.
  using DeliveryTap = std::function<void(const Delivery&)>;
  void set_delivery_tap(DeliveryTap tap) { tap_ = std::move(tap); }

 private:
  struct Socket {
    int fd = -1;
    Handler handler;
  };
  struct RxEntry {
    net::IpAddress from;
    net::IpAddress to;
    proto::Message message;
    std::uint64_t wire_bytes = 0;
  };

  void note_rx_error(WireError e);

  Config config_;
  // Ordered map: poll()/teardown iterate it, and wire files must hold the
  // same no-hash-order-iteration discipline the audit enforces repo-wide.
  std::map<net::IpAddress, Socket> sockets_;
  std::deque<RxEntry> rx_queue_;
  Stats stats_;
  RxErrors rx_errors_;
  DeliveryTap tap_;
};

/// The rx-error bucket inventory, one name per RxErrors field, in field
/// order. These become the `bucket` label of the wire_rx_errors metric
/// (docs/WIRE.md, "Rx error counters"); ppsim-audit's completeness pass
/// cross-checks this array against both the struct fields and the docs
/// table.
inline constexpr std::array<std::string_view, 8> kRxErrorBucketNames = {
    "truncated", "bad_magic", "bad_version", "bad_epoch",
    "bad_tag",   "bad_length", "bad_aux",    "bad_reserved",
};

/// Visits every rx-error bucket as (name, count), in kRxErrorBucketNames
/// order — the loop the metrics exporter and the node report share.
template <typename Fn>
void for_each_rx_error(const UdpTransport::RxErrors& e, Fn&& fn) {
  fn(kRxErrorBucketNames[0], e.truncated);
  fn(kRxErrorBucketNames[1], e.bad_magic);
  fn(kRxErrorBucketNames[2], e.bad_version);
  fn(kRxErrorBucketNames[3], e.bad_epoch);
  fn(kRxErrorBucketNames[4], e.bad_tag);
  fn(kRxErrorBucketNames[5], e.bad_length);
  fn(kRxErrorBucketNames[6], e.bad_aux);
  fn(kRxErrorBucketNames[7], e.bad_reserved);
}

}  // namespace ppsim::wire
