#include "wire/collector.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace ppsim::wire {

void fold_fleet_metrics(
    const std::map<net::IpAddress, const obs::MetricsRegistry*>& nodes,
    obs::MetricsRegistry* out) {
  for (const auto& [ip, reg] : nodes) {
    const std::string node_label = ip.to_string();
    reg->for_each([&](const obs::MetricsRegistry::EntryView& e) {
      obs::Labels labeled = e.labels;
      labeled.emplace_back("node", node_label);
      if (e.counter != nullptr) {
        out->counter(e.name, labeled).inc(e.counter->value());
        out->counter(e.name, e.labels).inc(e.counter->value());
      } else if (e.gauge != nullptr) {
        out->gauge(e.name, labeled).set(e.gauge->value());
      } else {
        out->histogram(e.name, e.histogram->upper_bounds(), labeled)
            .merge(*e.histogram);
        out->histogram(e.name, e.histogram->upper_bounds(), e.labels)
            .merge(*e.histogram);
      }
    });
  }
}

bool fold_fleet_matrix(
    const std::map<net::IpAddress, const obs::TrafficSample*>& nodes,
    obs::TrafficSample* out) {
  *out = obs::TrafficSample{};
  if (nodes.empty()) return false;
  double continuity_weighted = 0;
  double neighbor_weighted = 0;
  for (const auto& [ip, s] : nodes) {
    if (s->t > out->t) out->t = s->t;
    for (std::size_t i = 0; i < s->bytes.size(); ++i)
      for (std::size_t j = 0; j < s->bytes[i].size(); ++j)
        out->bytes[i][j] += s->bytes[i][j];
    out->interval_bytes += s->interval_bytes;
    out->interval_same_isp_bytes += s->interval_same_isp_bytes;
    out->alive_peers += s->alive_peers;
    const double w = static_cast<double>(s->alive_peers);
    continuity_weighted += w * s->avg_continuity;
    neighbor_weighted += w * s->neighbor_same_isp_share;
  }
  const std::uint64_t total = obs::matrix_total(out->bytes);
  const std::uint64_t intra = obs::matrix_intra_isp(out->bytes);
  out->same_isp_share_cum =
      total == 0 ? 0.0
                 : static_cast<double>(intra) / static_cast<double>(total);
  out->same_isp_share_interval =
      out->interval_bytes == 0
          ? 0.0
          : static_cast<double>(out->interval_same_isp_bytes) /
                static_cast<double>(out->interval_bytes);
  if (out->alive_peers > 0) {
    const double w = static_cast<double>(out->alive_peers);
    out->avg_continuity = continuity_weighted / w;
    out->neighbor_same_isp_share = neighbor_weighted / w;
  }
  return true;
}

namespace {

const char* status_name(Collector::NodeStatus s) {
  switch (s) {
    case Collector::NodeStatus::kUp: return "up";
    case Collector::NodeStatus::kClosed: return "closed";
    case Collector::NodeStatus::kLost: return "lost";
  }
  return "?";
}

bool parse_sample_line(const std::string& line, obs::TrafficSample* out) {
  std::istringstream is(line);
  const auto rows = obs::read_samples_ndjson(is);
  if (rows.size() != 1) return false;
  *out = rows.front();
  return true;
}

}  // namespace

void Collector::emit_event(const char* event, net::IpAddress ip,
                           const Node& node) {
  if (config_.events_out == nullptr) return;
  *config_.events_out << "[collect] event=" << event
                      << " node=" << ip.to_string() << " role=" << node.role
                      << " last_seq=" << node.last_seq << std::endl;
}

bool Collector::ingest(const std::string& datagram, sim::Time now) {
  std::istringstream is(datagram);
  std::string line;
  if (!std::getline(is, line)) {
    ++malformed_;
    return false;
  }
  TelemetryHeartbeat hb;
  if (classify_telemetry_record(line) != TelemetryRecord::kHeartbeat ||
      !decode_heartbeat(line, &hb)) {
    ++malformed_;
    return false;
  }

  auto it = nodes_.find(hb.node);
  const bool is_new = it == nodes_.end();
  if (!is_new && hb.seq <= it->second.last_seq) {
    ++dups_;
    return false;
  }
  Node& node = is_new ? nodes_[hb.node] : it->second;
  const NodeStatus prev = is_new ? NodeStatus::kUp : node.status;
  node.role = hb.role;
  node.epoch = hb.epoch;
  node.last_seq = hb.seq;
  node.last_heard = now;
  node.uptime = hb.uptime;
  ++node.datagrams;
  ++accepted_;
  if (is_new) emit_event("node-up", hb.node, node);
  if (hb.closing) {
    node.status = NodeStatus::kClosed;
    if (prev != NodeStatus::kClosed) emit_event("node-closed", hb.node, node);
  } else if (prev == NodeStatus::kLost) {
    node.status = NodeStatus::kUp;
    emit_event("node-recovered", hb.node, node);
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    switch (classify_telemetry_record(line)) {
      case TelemetryRecord::kMetric: {
        obs::ParsedMetric m;
        if (parse_metric_ndjson(line, &m) && apply_metric(m, &node.metrics)) {
          ++metric_rows_;
        } else {
          ++unknown_records_;
        }
        break;
      }
      case TelemetryRecord::kSample: {
        obs::TrafficSample s;
        if (parse_sample_line(line, &s)) {
          if (!node.has_sample || s.t > node.latest.t) {
            node.latest = s;
            node.has_sample = true;
          }
          ++sample_rows_;
        } else {
          ++unknown_records_;
        }
        break;
      }
      case TelemetryRecord::kHeartbeat:
      case TelemetryRecord::kUnknown:
        ++unknown_records_;
        break;
    }
  }
  return true;
}

void Collector::tick(sim::Time now) {
  for (auto& [ip, node] : nodes_) {
    if (node.status == NodeStatus::kUp &&
        now - node.last_heard > config_.heartbeat_timeout) {
      node.status = NodeStatus::kLost;
      emit_event("node-lost", ip, node);
    }
  }
  if (config_.fleet_samples_out == nullptr) return;
  std::map<net::IpAddress, const obs::TrafficSample*> latest;
  for (const auto& [ip, node] : nodes_)
    if (node.has_sample) latest.emplace(ip, &node.latest);
  obs::TrafficSample fleet;
  if (fold_fleet_matrix(latest, &fleet) && fleet.t > last_fleet_t_) {
    obs::write_sample_ndjson(*config_.fleet_samples_out, fleet);
    config_.fleet_samples_out->flush();
    last_fleet_t_ = fleet.t;
  }
}

std::size_t Collector::closed_count() const {
  std::size_t n = 0;
  for (const auto& [ip, node] : nodes_)
    if (node.status == NodeStatus::kClosed) ++n;
  return n;
}

std::size_t Collector::lost_count() const {
  std::size_t n = 0;
  for (const auto& [ip, node] : nodes_)
    if (node.status == NodeStatus::kLost) ++n;
  return n;
}

void Collector::write_summary(std::ostream& os, sim::Time now) const {
  std::map<net::IpAddress, const obs::TrafficSample*> latest;
  double continuity_floor = -1.0;
  double rss_bytes = 0;
  double events_per_s = 0;
  for (const auto& [ip, node] : nodes_) {
    if (node.has_sample) {
      latest.emplace(ip, &node.latest);
      if (node.latest.alive_peers > 0 &&
          (continuity_floor < 0 ||
           node.latest.avg_continuity < continuity_floor))
        continuity_floor = node.latest.avg_continuity;
    }
    if (const obs::Gauge* g = node.metrics.find_gauge("resource_rss_bytes"))
      rss_bytes += g->value();
    if (const obs::Gauge* g =
            node.metrics.find_gauge("sched_events_per_wall_s"))
      events_per_s += g->value();
  }
  obs::TrafficSample fleet;
  fold_fleet_matrix(latest, &fleet);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "[collect] t=%.1f nodes=%zu up=%zu closed=%zu lost=%zu "
                "continuity_floor=%.3f intra_isp_share=%.3f rss_bytes=%.0f "
                "events_per_s=%.1f datagrams=%llu dups=%llu",
                now.as_seconds(), nodes_.size(),
                nodes_.size() - closed_count() - lost_count(), closed_count(),
                lost_count(), continuity_floor < 0 ? 0.0 : continuity_floor,
                fleet.same_isp_share_cum, rss_bytes, events_per_s,
                static_cast<unsigned long long>(accepted_),
                static_cast<unsigned long long>(dups_));
  os << buf << std::endl;
}

void Collector::fold_closed_metrics(obs::MetricsRegistry* out) const {
  std::map<net::IpAddress, const obs::MetricsRegistry*> closed;
  for (const auto& [ip, node] : nodes_)
    if (node.status == NodeStatus::kClosed) closed.emplace(ip, &node.metrics);
  fold_fleet_metrics(closed, out);
}

bool Collector::fold_closed_matrix(obs::TrafficSample* out) const {
  std::map<net::IpAddress, const obs::TrafficSample*> closed;
  for (const auto& [ip, node] : nodes_)
    if (node.status == NodeStatus::kClosed && node.has_sample)
      closed.emplace(ip, &node.latest);
  return fold_fleet_matrix(closed, out);
}

void Collector::write_node_reports(std::ostream& os) const {
  for (const auto& [ip, node] : nodes_) {
    os << "node=" << ip.to_string() << " role=" << node.role
       << " status=" << status_name(node.status)
       << " last_seq=" << node.last_seq << " datagrams=" << node.datagrams
       << " metric_rows_seen=" << node.metrics.size() << "\n";
  }
}

}  // namespace ppsim::wire
