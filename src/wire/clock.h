#pragma once

#include <chrono>

#include "sim/simulator.h"
#include "sim/time.h"

namespace ppsim::wire {

/// Real-time clock adapter: maps the monotonic wall clock onto the sim
/// timeline, with t=0 at construction. This file is the *only* place the
/// deployment mode reads a wall clock — protocol entities keep consuming
/// sim::Simulator::now(), which the node's run loop advances to wall time
/// (the sim/proto/net modules stay under the audit's wall-clock ban; the
/// wire module is exempt by design, see docs/WIRE.md).
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  /// Monotonic time elapsed since construction, as sim time.
  sim::Time now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return sim::Time::from_seconds(
        std::chrono::duration<double>(elapsed).count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Advances `simulator` to wall time `target`. run_until alone leaves now()
/// resting at the last executed event when the queue drains early, so a
/// no-op event is pinned at the target first — handlers and timers always
/// observe now() == wall time at the top of each loop iteration.
inline void advance_to_wall(sim::Simulator& simulator, sim::Time target) {
  if (target < simulator.now()) return;
  simulator.schedule_at(target, [] {}, "wire.tick");
  simulator.run_until(target);
}

}  // namespace ppsim::wire
