#include "wire/telemetry.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "obs/json.h"

namespace ppsim::wire {

namespace {

/// Finds `"key":` and returns the index just past the colon, or npos.
std::size_t find_key(const std::string& line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

/// Reads the quoted string value at `pos` (heartbeat fields never contain
/// escapes — IPs, role names, state names).
bool read_plain_string(const std::string& line, std::size_t pos,
                       std::string* out) {
  if (pos == std::string::npos || pos >= line.size() || line[pos] != '"')
    return false;
  const std::size_t end = line.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(pos + 1, end - pos - 1);
  return true;
}

bool read_u64(const std::string& line, std::size_t pos, std::uint64_t* out) {
  if (pos == std::string::npos || pos >= line.size()) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  *out = static_cast<std::uint64_t>(std::strtoull(start, &end, 10));
  return end != start;
}

}  // namespace

TelemetryRecord classify_telemetry_record(std::string_view line) {
  if (line.rfind("{\"telemetry_schema\"", 0) == 0)
    return TelemetryRecord::kHeartbeat;
  if (line.rfind("{\"metric\":", 0) == 0) return TelemetryRecord::kMetric;
  if (line.rfind("{\"t\":", 0) == 0) return TelemetryRecord::kSample;
  return TelemetryRecord::kUnknown;
}

std::string encode_heartbeat(const TelemetryHeartbeat& hb) {
  std::ostringstream os;
  os << "{\"telemetry_schema\":\"" << kTelemetrySchema << "\",\"node\":\""
     << hb.node.to_string() << "\",\"role\":\"" << hb.role
     << "\",\"epoch\":" << hb.epoch << ",\"seq\":" << hb.seq
     << ",\"uptime_s\":";
  obs::write_json_sim_time(os, hb.uptime);
  os << ",\"state\":\"" << (hb.closing ? "closing" : "up") << "\"}";
  return os.str();
}

bool decode_heartbeat(const std::string& line, TelemetryHeartbeat* out) {
  *out = TelemetryHeartbeat{};
  std::string schema;
  if (!read_plain_string(line, find_key(line, "telemetry_schema"), &schema) ||
      schema != kTelemetrySchema)
    return false;
  std::string node;
  if (!read_plain_string(line, find_key(line, "node"), &node)) return false;
  const auto ip = net::IpAddress::parse(node);
  if (!ip.has_value()) return false;
  out->node = *ip;
  if (!read_plain_string(line, find_key(line, "role"), &out->role))
    return false;
  std::uint64_t epoch = 0;
  if (!read_u64(line, find_key(line, "epoch"), &epoch) || epoch > 0xffff)
    return false;
  out->epoch = static_cast<std::uint16_t>(epoch);
  if (!read_u64(line, find_key(line, "seq"), &out->seq)) return false;
  const std::size_t up_pos = find_key(line, "uptime_s");
  if (up_pos == std::string::npos) return false;
  out->uptime = sim::Time::from_seconds(std::strtod(line.c_str() + up_pos,
                                                    nullptr));
  std::string state;
  if (!read_plain_string(line, find_key(line, "state"), &state)) return false;
  if (state != "up" && state != "closing") return false;
  out->closing = state == "closing";
  return true;
}

std::vector<std::string> build_telemetry_datagrams(
    const TelemetryHeartbeat& hb, const std::vector<std::string>& metric_rows,
    const std::vector<std::string>& sample_rows, std::size_t max_bytes) {
  std::vector<std::string> datagrams;
  TelemetryHeartbeat head = hb;
  std::string current;
  const auto open = [&] { current = encode_heartbeat(head); };
  const auto seal = [&] {
    datagrams.push_back(std::move(current));
    ++head.seq;
    open();
  };
  open();
  const auto append = [&](const std::string& row) {
    // +1 for the separating newline; an oversized row ships alone.
    if (current.size() + 1 + row.size() > max_bytes &&
        current.size() > encode_heartbeat(head).size())
      seal();
    current += '\n';
    current += row;
  };
  for (const auto& row : metric_rows) append(row);
  for (const auto& row : sample_rows) append(row);
  datagrams.push_back(std::move(current));
  return datagrams;
}

TelemetryClient::TelemetryClient(net::IpAddress to, std::uint16_t port)
    : to_(to), port_(port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ >= 0) ::fcntl(fd_, F_SETFL, O_NONBLOCK);
}

TelemetryClient::~TelemetryClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool TelemetryClient::send(const std::string& datagram) {
  if (fd_ < 0) {
    ++send_errors_;
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(to_.value());
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (n == static_cast<ssize_t>(datagram.size())) {
    ++sent_;
    return true;
  }
  ++send_errors_;
  return false;
}

bool parse_host_port(const std::string& spec, net::IpAddress* ip,
                     std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size())
    return false;
  const auto parsed = net::IpAddress::parse(spec.substr(0, colon));
  if (!parsed.has_value()) return false;
  char* end = nullptr;
  const unsigned long p = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == spec.c_str() + colon + 1 || *end != '\0' || p == 0 || p > 0xffff)
    return false;
  *ip = *parsed;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace ppsim::wire
