#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip.h"
#include "sim/time.h"

namespace ppsim::wire {

/// The fleet telemetry plane: ppsim-telemetry-v1 (docs/OBSERVABILITY.md,
/// "Fleet telemetry").
///
/// A telemetry datagram is text NDJSON, deliberately *not* the binary
/// ppsim-wire-v1 codec: it carries the exact rows the node's own
/// --metrics-out / --samples-out sinks would contain, so a collector that
/// folds received rows and an offline fold of the per-node sink files are
/// byte-comparable by construction. Layout:
///
///   line 1   heartbeat  {"telemetry_schema":"ppsim-telemetry-v1",...}
///   line 2+  payload    metric rows ({"metric":...}) and/or sample rows
///                       ({"t":...}), each byte-identical to its sink row
///
/// Every datagram carries its own heartbeat (and its own seq), so any
/// single datagram identifies its node, role, epoch and position in the
/// node's snapshot stream, and a heartbeat-only datagram is the minimal
/// liveness signal.
inline constexpr std::string_view kTelemetrySchema = "ppsim-telemetry-v1";

/// Stay safely under UdpTransport::kMaxDatagram-ish limits and typical
/// loopback defaults; snapshots larger than this split into consecutive
/// datagrams (each with its own seq).
inline constexpr std::size_t kTelemetryMaxDatagram = 32 * 1024;

/// The record types a telemetry datagram may carry, classified by line
/// prefix. ppsim-audit's completeness pass cross-checks this inventory
/// against the "Telemetry record types" table in docs/OBSERVABILITY.md.
enum class TelemetryRecord : std::uint8_t {
  kHeartbeat = 0,  // node identity/role/epoch/seq/uptime/state
  kMetric = 1,     // one metrics-NDJSON row (cumulative values)
  kSample = 2,     // one samples-NDJSON row (TrafficSampler window)
  kUnknown = 3,
};

inline constexpr std::array<std::string_view, 3> kTelemetryRecordNames = {
    "Heartbeat",
    "Metric",
    "Sample",
};

/// Classifies one datagram line by its prefix; anything unrecognized is
/// kUnknown (counted, never applied).
TelemetryRecord classify_telemetry_record(std::string_view line);

/// The heartbeat record. `closing` marks a node's final full snapshot
/// (graceful shutdown); the collector uses it to distinguish "node closed"
/// from "node lost" (heartbeat timeout).
struct TelemetryHeartbeat {
  net::IpAddress node;
  std::string role;  // "hub" | "source" | "peer"
  std::uint16_t epoch = 1;
  std::uint64_t seq = 0;
  sim::Time uptime = sim::Time::zero();
  bool closing = false;
};

/// One heartbeat line, no trailing newline:
/// {"telemetry_schema":"ppsim-telemetry-v1","node":"127.1.0.10",
///  "role":"peer","epoch":1,"seq":7,"uptime_s":12.500000,"state":"up"}
std::string encode_heartbeat(const TelemetryHeartbeat& hb);

/// Parses a heartbeat line (schema checked). Returns false on anything
/// malformed or from another schema version.
bool decode_heartbeat(const std::string& line, TelemetryHeartbeat* out);

/// Packs payload rows (metric rows first, then sample rows — both without
/// trailing newlines) into datagrams of at most `max_bytes`, each prefixed
/// with its own heartbeat. Datagram seqs are consecutive starting at
/// hb.seq; the caller advances its seq counter by the number of datagrams
/// returned. With no payload rows, returns one heartbeat-only datagram.
/// A single oversized row still ships (alone, overweight) rather than
/// being dropped silently.
std::vector<std::string> build_telemetry_datagrams(
    const TelemetryHeartbeat& hb, const std::vector<std::string>& metric_rows,
    const std::vector<std::string>& sample_rows,
    std::size_t max_bytes = kTelemetryMaxDatagram);

/// Fire-and-forget UDP sender for telemetry datagrams. One unbound socket,
/// nonblocking; send failures are counted, never fatal — telemetry must
/// not take the data plane down.
class TelemetryClient {
 public:
  TelemetryClient(net::IpAddress to, std::uint16_t port);
  ~TelemetryClient();

  TelemetryClient(const TelemetryClient&) = delete;
  TelemetryClient& operator=(const TelemetryClient&) = delete;

  /// Socket creation succeeded; when false every send() is a counted no-op.
  bool ok() const { return fd_ >= 0; }

  bool send(const std::string& datagram);

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t send_errors() const { return send_errors_; }

 private:
  int fd_ = -1;
  net::IpAddress to_;
  std::uint16_t port_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t send_errors_ = 0;
};

/// Parses "IP:PORT" (e.g. "127.0.0.9:47500"). Returns false on malformed
/// input; used by the --telemetry-to flag and ppsim-collect's --bind.
bool parse_host_port(const std::string& spec, net::IpAddress* ip,
                     std::uint16_t* port);

}  // namespace ppsim::wire
