#include "wire/node.h"

#include <cassert>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "net/asn_db.h"
#include "obs/metrics.h"
#include "obs/resource_probe.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "proto/bootstrap.h"
#include "proto/peer.h"
#include "proto/source.h"
#include "proto/tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "wire/clock.h"
#include "wire/telemetry.h"

namespace ppsim::wire {

namespace {

/// A node's HostIdentity, attributed via the loopback ASN database. The
/// access profile is informational on the wire (the kernel enforces real
/// capacity); the default profile keeps the field well-formed.
proto::HostIdentity loopback_identity(const net::IspRegistry& registry,
                                      const net::AsnDatabase& db,
                                      net::IpAddress ip) {
  const net::IspCategory category = db.category_or_foreign(ip);
  const auto ids = registry.in_category(category);
  assert(!ids.empty());
  return proto::HostIdentity{ip, ids.front(), category,
                             net::AccessProfile{}};
}

const char* role_name(NodeRole role) {
  switch (role) {
    case NodeRole::kHub: return "hub";
    case NodeRole::kSource: return "source";
    case NodeRole::kPeer: return "peer";
  }
  return "?";
}

}  // namespace

net::IspRegistry loopback_registry() {
  net::IspRegistry registry;
  struct Block {
    const char* name;
    std::uint32_t asn;
    net::IspCategory category;
    std::uint8_t second_octet;
  };
  // ASNs echo the standard topology's backbone numbers so analysis output
  // reads the same in sim and wire runs.
  const Block blocks[] = {
      {"LOOP-TELE", 4134, net::IspCategory::kTele, 1},
      {"LOOP-CNC", 4837, net::IspCategory::kCnc, 2},
      {"LOOP-CER", 4538, net::IspCategory::kCer, 3},
      {"LOOP-OTHER-CN", 9394, net::IspCategory::kOtherCn, 4},
      {"LOOP-FOREIGN", 701, net::IspCategory::kForeign, 5},
  };
  for (const auto& b : blocks) {
    const net::IspId id = registry.add(b.name, b.asn, b.category);
    registry.add_prefix(
        id, net::Prefix(net::IpAddress(127, b.second_octet, 0, 0), 16));
  }
  return registry;
}

NodeReport run_node(const NodeConfig& config,
                    const std::function<bool()>& stop) {
  const net::IspRegistry registry = loopback_registry();
  const net::AsnDatabase db = net::AsnDatabase::from_registry(registry);

  sim::Simulator simulator;
  UdpTransport::Config transport_config;
  transport_config.port = config.port;
  transport_config.epoch = config.epoch;
  UdpTransport transport(transport_config);
  sim::Rng rng(config.seed);

  // --- observability sinks (all optional, mirroring the sim CLI) ---
  std::ofstream trace_os;
  std::unique_ptr<obs::NdjsonTraceSink> trace_sink;
  if (!config.trace_out.empty()) {
    trace_os.open(config.trace_out);
    trace_sink = std::make_unique<obs::NdjsonTraceSink>(trace_os);
  }
  // The registry is *live*: update_metrics() below converges it onto the
  // transport/protocol state whenever a telemetry snapshot or the final
  // sink write needs it, so the rows a snapshot ships are the rows the
  // sink file ends up holding — the byte-identity the collector relies on.
  obs::MetricsRegistry metrics;
  obs::ResourceProbe probe;
  probe.bind_metrics(&metrics);
  obs::TrafficSampler sampler;
  obs::IspMatrix traffic{};

  std::uint64_t payload_total = 0;
  std::uint64_t payload_same_isp = 0;
  const net::IspCategory own_category = db.category_or_foreign(config.ip);
  transport.set_delivery_tap([&](const UdpTransport::Delivery& d) {
    if (const auto* dr = std::get_if<proto::DataReply>(&d.payload)) {
      const auto src = static_cast<std::size_t>(db.category_or_foreign(d.from));
      const auto dst = static_cast<std::size_t>(db.category_or_foreign(d.to));
      traffic[src][dst] += dr->payload_bytes;
      payload_total += dr->payload_bytes;
      if (src == dst) payload_same_isp += dr->payload_bytes;
    }
  });

  // --- the entity this process hosts ---
  std::unique_ptr<proto::BootstrapServer> bootstrap;
  std::unique_ptr<proto::TrackerServer> tracker;
  std::unique_ptr<proto::StreamSource> source;
  std::unique_ptr<proto::Peer> peer;
  switch (config.role) {
    case NodeRole::kHub: {
      bootstrap = std::make_unique<proto::BootstrapServer>(
          simulator, transport,
          loopback_identity(registry, db, config.bootstrap));
      tracker = std::make_unique<proto::TrackerServer>(
          simulator, transport,
          loopback_identity(registry, db, config.tracker), rng.fork(1));
      proto::BootstrapServer::ChannelEntry entry;
      entry.channel = config.channel.id;
      entry.source = config.source;
      entry.tracker_groups = {{config.tracker}};
      bootstrap->register_channel(std::move(entry));
      if (trace_sink != nullptr) {
        bootstrap->set_trace_sink(trace_sink.get());
        tracker->set_trace_sink(trace_sink.get());
      }
      break;
    }
    case NodeRole::kSource: {
      source = std::make_unique<proto::StreamSource>(
          simulator, transport, loopback_identity(registry, db, config.ip),
          config.channel, std::vector<net::IpAddress>{config.tracker},
          rng.fork(2));
      if (trace_sink != nullptr) source->set_trace_sink(trace_sink.get());
      source->start();
      break;
    }
    case NodeRole::kPeer: {
      peer = std::make_unique<proto::Peer>(
          simulator, transport, loopback_identity(registry, db, config.ip),
          config.channel, config.bootstrap, rng.fork(3));
      if (trace_sink != nullptr) peer->set_trace_sink(trace_sink.get());
      peer->join();
      break;
    }
  }

  // --- live metrics: converge the registry onto the current state ---
  const auto bump = [](obs::Counter& c, std::uint64_t v) {
    if (v > c.value()) c.inc(v - c.value());
  };
  const auto update_metrics = [&] {
    const auto& ts = transport.stats();
    bump(metrics.counter("wire_packets_sent"), ts.packets_sent);
    bump(metrics.counter("wire_packets_delivered"), ts.packets_delivered);
    bump(metrics.counter("wire_bytes_sent"), ts.bytes_sent);
    bump(metrics.counter("wire_uplink_drops"), ts.uplink_drops);
    bump(metrics.counter("wire_downlink_drops"), ts.downlink_drops);
    bump(metrics.counter("wire_dead_destination_drops"),
         ts.dead_destination_drops);
    const auto& rx = transport.rx_errors();
    bump(metrics.counter("wire_rx_errors"), rx.total());
    for_each_rx_error(rx, [&](std::string_view bucket, std::uint64_t v) {
      bump(metrics.counter("wire_rx_errors",
                           {{"bucket", std::string(bucket)}}),
           v);
    });
    if (peer != nullptr) {
      const proto::PeerCounters counters = peer->counters();
      proto::for_each_field(
          counters, [&](const char* name, const std::uint64_t& v) {
            bump(metrics.counter(std::string("peer_") + name), v);
          });
      metrics.gauge("continuity").set(counters.continuity());
    }
    metrics.gauge("delivered_locality")
        .set(payload_total == 0
                 ? 0.0
                 : static_cast<double>(payload_same_isp) /
                       static_cast<double>(payload_total));
  };
  const auto sample_resources = [&](sim::Time wall) {
    obs::ResourceProbe::Inputs in;
    in.now = simulator.now();
    in.queue_depth = simulator.pending_events();
    in.event_horizon = simulator.latest_scheduled() - simulator.now();
    in.events_executed = simulator.events_executed();
    in.queue_bytes = simulator.approx_queue_bytes();
    if (peer != nullptr && peer->alive()) {
      in.live_peers = 1;
      in.live_peer_bytes = peer->approx_live_bytes();
    }
    in.wall_seconds = wall.as_seconds();
    probe.sample(in);
  };

  // --- the telemetry plane (optional; docs/OBSERVABILITY.md) ---
  std::unique_ptr<TelemetryClient> telemetry;
  if (!config.telemetry_to.empty()) {
    net::IpAddress collect_ip;
    std::uint16_t collect_port = 0;
    if (parse_host_port(config.telemetry_to, &collect_ip, &collect_port))
      telemetry = std::make_unique<TelemetryClient>(collect_ip, collect_port);
  }
  obs::MetricsDeltaTracker delta_tracker;
  std::uint64_t telemetry_next_seq = 0;
  std::size_t samples_shipped = 0;
  const auto ship_telemetry = [&](sim::Time wall, bool closing) {
    if (telemetry == nullptr) return;
    update_metrics();
    sample_resources(wall);
    const std::vector<std::string> metric_rows =
        closing ? delta_tracker.collect_full(metrics)
                : delta_tracker.collect(metrics);
    if (closing) samples_shipped = 0;  // full snapshot: re-ship every sample
    std::vector<std::string> sample_rows;
    const auto& samples = sampler.samples();
    for (std::size_t i = samples_shipped; i < samples.size(); ++i) {
      std::ostringstream row_os;
      obs::write_sample_ndjson(row_os, samples[i]);
      std::string row = row_os.str();
      if (!row.empty() && row.back() == '\n') row.pop_back();
      sample_rows.push_back(std::move(row));
    }
    samples_shipped = samples.size();
    TelemetryHeartbeat hb;
    hb.node = config.ip;
    hb.role = role_name(config.role);
    hb.epoch = config.epoch;
    hb.uptime = wall;
    hb.closing = closing;
    // The closing snapshot ships twice with *fresh* seqs (the collector's
    // dedup window would drop a re-send under the same seqs); both passes
    // carry identical rows, so whichever arrives last wins identically.
    const int passes = closing ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      hb.seq = telemetry_next_seq;
      const auto datagrams =
          build_telemetry_datagrams(hb, metric_rows, sample_rows);
      for (const auto& d : datagrams) telemetry->send(d);
      telemetry_next_seq += datagrams.size();
    }
  };

  // --- the real-time loop: wall clock -> simulator -> sockets ---
  WallClock clock;
  sim::Time next_sample = config.sample_period;
  sim::Time next_telemetry = config.telemetry_period;
  const auto collect_sample = [&] {
    double continuity = 0.0;
    std::uint64_t viewers = 0;
    std::uint64_t same_isp_links = 0;
    std::uint64_t total_links = 0;
    if (peer != nullptr && peer->alive()) {
      const auto& c = peer->counters();
      if (c.chunks_played + c.chunks_missed > 0) {
        continuity = c.continuity();
        viewers = 1;
      }
      for (const auto& ip : peer->neighbor_ips()) {
        ++total_links;
        if (db.category_or_foreign(ip) == own_category) ++same_isp_links;
      }
    }
    sampler.record(
        simulator.now(), traffic,
        total_links == 0 ? 0.0
                         : static_cast<double>(same_isp_links) /
                               static_cast<double>(total_links),
        viewers == 0 ? 0.0 : continuity, viewers);
  };

  for (;;) {
    if (stop()) break;
    const sim::Time wall = clock.now();
    if (config.duration > sim::Time::zero() && wall >= config.duration) break;
    advance_to_wall(simulator, wall);
    transport.poll(/*timeout_ms=*/2);
    transport.dispatch(simulator.now());
    if (config.sample_period > sim::Time::zero() && wall >= next_sample) {
      collect_sample();
      next_sample = next_sample + config.sample_period;
    }
    if (telemetry != nullptr && config.telemetry_period > sim::Time::zero() &&
        wall >= next_telemetry) {
      ship_telemetry(wall, /*closing=*/false);
      next_telemetry = next_telemetry + config.telemetry_period;
    }
  }

  // --- graceful shutdown ---
  // Leaving notifies neighbors; a short drain window lets the goodbyes (and
  // any replies already queued to us) clear before sockets close.
  if (peer != nullptr) peer->leave();
  if (source != nullptr) source->stop();
  const sim::Time drain_until = clock.now() + sim::Time::millis(200);
  while (clock.now() < drain_until) {
    advance_to_wall(simulator, clock.now());
    transport.poll(/*timeout_ms=*/10);
    transport.dispatch(simulator.now());
  }
  if (config.sample_period > sim::Time::zero()) collect_sample();
  // The closing snapshot goes out before the local sinks are written: by
  // the time the process's own files exist, the collector has (modulo UDP
  // loss, which the double-send covers) the same rows.
  ship_telemetry(clock.now(), /*closing=*/true);

  // --- report + sink flush (runs on every exit path, signal included) ---
  NodeReport report;
  report.transport = transport.stats();
  report.rx_errors = transport.rx_errors();
  if (peer != nullptr) {
    report.counters = peer->counters();
    report.continuity = report.counters.continuity();
  }
  if (source != nullptr) {
    report.chunks_produced = source->chunks_produced();
    report.requests_served = source->requests_served();
  }
  if (tracker != nullptr) report.queries_served = tracker->queries_served();
  if (bootstrap != nullptr) report.joins_served = bootstrap->joins_served();
  report.samples_recorded = sampler.samples().size();
  report.delivered_locality =
      payload_total == 0 ? 0.0
                         : static_cast<double>(payload_same_isp) /
                               static_cast<double>(payload_total);
  if (telemetry != nullptr) {
    report.telemetry_seq =
        telemetry_next_seq == 0 ? 0 : telemetry_next_seq - 1;
    report.telemetry_datagrams = telemetry->datagrams_sent();
  }

  if (!config.samples_out.empty()) {
    std::ofstream os(config.samples_out);
    obs::write_samples_ndjson(os, sampler.samples());
  }
  if (!config.metrics_out.empty()) {
    if (telemetry == nullptr) {
      // No closing snapshot converged the registry; do it here so the sink
      // carries the end-of-run state.
      update_metrics();
      sample_resources(clock.now());
    }
    std::ofstream os(config.metrics_out);
    metrics.write_ndjson(os);
  }
  if (trace_os.is_open()) {
    trace_os.flush();
    trace_os.close();
  }
  return report;
}

}  // namespace ppsim::wire
