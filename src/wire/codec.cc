#include "wire/codec.h"

#include <cassert>

namespace ppsim::wire {

namespace {

// Big-endian (network order) primitives. The format is explicit about byte
// order so heterogenous hosts interoperate; loopback tests exercise the
// same paths.
void put_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) |
                                    std::uint16_t{p[1]});
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{get_u16(p)} << 16) | get_u16(p + 2);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return (std::uint64_t{get_u32(p)} << 32) | get_u32(p + 4);
}

/// Addresses travel as 6 bytes — IPv4 + a 2-byte port slot, the shape real
/// peer-list entries have. The deployment binds every node to one shared
/// port (docs/WIRE.md), so the slot is written zero and must read zero.
void put_addr(std::vector<std::uint8_t>* out, net::IpAddress ip) {
  put_u32(out, ip.value());
  put_u16(out, 0);
}

/// aux bit assignments for the bitmap-carrying variants: bits 0-2 hold the
/// trailing-bit count of the last bitmap byte (have.size() % 8), bit 15
/// holds ConnectReply::accepted. All other aux bits are undefined in v1 and
/// must be zero.
constexpr std::uint16_t kAuxTrailingMask = 0x0007;
constexpr std::uint16_t kAuxAcceptedBit = 0x8000;

void put_bitmap(std::vector<std::uint8_t>* out,
                const std::vector<bool>& have) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < have.size(); ++i) {
    if (have[i]) acc |= static_cast<std::uint8_t>(1u << (7 - i % 8));
    if (i % 8 == 7) {
      out->push_back(acc);
      acc = 0;
    }
  }
  if (have.size() % 8 != 0) out->push_back(acc);
}

/// Reconstructs a bitmap from `bytes` bitmap bytes whose last byte carries
/// `trailing` significant bits (0 meaning a full 8). Returns false when the
/// padding bits of the last byte are not zero.
bool get_bitmap(const std::uint8_t* p, std::size_t bytes,
                std::uint16_t trailing, std::vector<bool>* have) {
  if (bytes == 0) return true;
  const std::size_t n =
      (bytes - 1) * 8 + (trailing == 0 ? 8 : static_cast<std::size_t>(trailing));
  have->reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    have->push_back((p[i / 8] >> (7 - i % 8)) & 1u);
  // Unused low-order bits of the last byte are padding and must be zero.
  if (trailing != 0) {
    const std::uint8_t pad_mask =
        static_cast<std::uint8_t>(0xFFu >> trailing);
    if ((p[bytes - 1] & pad_mask) != 0) return false;
  }
  return true;
}

struct EncodeVisitor {
  std::vector<std::uint8_t>* out;
  std::uint16_t epoch;

  void header(Tag tag, std::uint16_t aux) const {
    put_u16(out, kMagic);
    out->push_back(kVersion);
    out->push_back(static_cast<std::uint8_t>(tag));
    put_u16(out, epoch);
    put_u16(out, aux);
  }

  WireError operator()(const proto::ChannelListQuery&) const {
    header(Tag::kChannelListQuery, 0);
    return WireError::kOk;
  }
  WireError operator()(const proto::ChannelListReply& m) const {
    header(Tag::kChannelListReply, 0);
    for (const auto c : m.channels) put_u32(out, c);
    return WireError::kOk;
  }
  WireError operator()(const proto::JoinQuery& m) const {
    header(Tag::kJoinQuery, 0);
    put_u32(out, m.channel);
    return WireError::kOk;
  }
  WireError operator()(const proto::JoinReply& m) const {
    header(Tag::kJoinReply, 0);
    put_u32(out, m.channel);
    put_u32(out, m.source.value());
    for (const auto t : m.trackers) put_addr(out, t);
    return WireError::kOk;
  }
  WireError operator()(const proto::TrackerQuery& m) const {
    header(Tag::kTrackerQuery, 0);
    put_u32(out, m.channel);
    put_u32(out, 0);  // reserved
    return WireError::kOk;
  }
  WireError operator()(const proto::TrackerReply& m) const {
    header(Tag::kTrackerReply, 0);
    put_u32(out, m.channel);
    for (const auto p : m.peers) put_addr(out, p);
    return WireError::kOk;
  }
  WireError operator()(const proto::PeerListQuery& m) const {
    header(Tag::kPeerListQuery, 0);
    put_u32(out, m.channel);
    for (const auto p : m.my_peers) put_addr(out, p);
    return WireError::kOk;
  }
  WireError operator()(const proto::PeerListReply& m) const {
    header(Tag::kPeerListReply, 0);
    put_u32(out, m.channel);
    for (const auto p : m.peers) put_addr(out, p);
    return WireError::kOk;
  }
  WireError operator()(const proto::ConnectQuery& m) const {
    header(Tag::kConnectQuery, 0);
    put_u32(out, m.channel);
    put_u32(out, 0);  // reserved
    return WireError::kOk;
  }
  WireError operator()(const proto::ConnectReply& m) const {
    const auto trailing =
        static_cast<std::uint16_t>(m.map.have.size() % 8);
    header(Tag::kConnectReply,
           static_cast<std::uint16_t>((m.accepted ? kAuxAcceptedBit : 0) |
                                      trailing));
    put_u32(out, m.channel);
    put_u64(out, m.map.base);
    put_bitmap(out, m.map.have);
    return WireError::kOk;
  }
  WireError operator()(const proto::BufferMapAnnounce& m) const {
    header(Tag::kBufferMapAnnounce,
           static_cast<std::uint16_t>(m.map.have.size() % 8));
    put_u32(out, m.channel);
    put_u64(out, m.map.base);
    put_bitmap(out, m.map.have);
    return WireError::kOk;
  }
  WireError operator()(const proto::DataQuery& m) const {
    header(Tag::kDataQuery, 0);
    put_u32(out, m.channel);
    put_u64(out, m.chunk);
    return WireError::kOk;
  }
  WireError operator()(const proto::DataReply& m) const {
    // The sim charges payload + one 12-byte protocol header + one extra
    // IP+UDP header per additional sub-piece; the v1 datagram spends 28
    // bytes on real fields and zero-fills the rest of that budget. A reply
    // whose budget is below the fixed fields (payload_bytes < 16 with at
    // most one sub-piece — never produced by the protocol) has no encoding.
    const std::uint64_t total =
        12 + m.payload_bytes +
        kIpUdpHeader * (m.subpieces > 0 ? m.subpieces - 1 : 0);
    if (total < kHeaderBytes + 20 || total > kMaxDatagram)
      return WireError::kUnencodable;
    header(Tag::kDataReply, 0);
    put_u32(out, m.channel);
    put_u64(out, m.chunk);
    put_u32(out, m.subpieces);
    put_u32(out, m.payload_bytes);
    out->resize(static_cast<std::size_t>(total), 0);
    return WireError::kOk;
  }
  WireError operator()(const proto::Goodbye& m) const {
    header(Tag::kGoodbye, 0);
    put_u32(out, m.channel);
    return WireError::kOk;
  }
};

/// Body decoders. `p` points at the body (after the header), `len` is the
/// body length in bytes; header fields arrive pre-validated except aux,
/// which each decoder owns.

WireError expect_aux_zero(std::uint16_t aux) {
  return aux == 0 ? WireError::kOk : WireError::kBadAux;
}

WireError decode_channel_list_query(const std::uint8_t*, std::size_t len,
                                    std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 0) return WireError::kBadLength;
  *m = proto::ChannelListQuery{};
  return WireError::kOk;
}

WireError decode_channel_list_reply(const std::uint8_t* p, std::size_t len,
                                    std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len % 4 != 0) return WireError::kBadLength;
  proto::ChannelListReply r;
  r.channels.reserve(len / 4);
  for (std::size_t i = 0; i < len; i += 4) r.channels.push_back(get_u32(p + i));
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_join_query(const std::uint8_t* p, std::size_t len,
                            std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 4) return WireError::kBadLength;
  *m = proto::JoinQuery{get_u32(p)};
  return WireError::kOk;
}

/// Shared 6-byte address-list tail of JoinReply/TrackerReply/PeerList*.
WireError decode_addr_list(const std::uint8_t* p, std::size_t len,
                           std::vector<net::IpAddress>* out) {
  if (len % 6 != 0) return WireError::kBadLength;
  out->reserve(len / 6);
  for (std::size_t i = 0; i < len; i += 6) {
    if (get_u16(p + i + 4) != 0) return WireError::kBadReserved;
    out->push_back(net::IpAddress(get_u32(p + i)));
  }
  return WireError::kOk;
}

WireError decode_join_reply(const std::uint8_t* p, std::size_t len,
                            std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len < 8) return WireError::kTruncated;
  proto::JoinReply r;
  r.channel = get_u32(p);
  r.source = net::IpAddress(get_u32(p + 4));
  if (const auto e = decode_addr_list(p + 8, len - 8, &r.trackers);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_tracker_query(const std::uint8_t* p, std::size_t len,
                               std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 8) return WireError::kBadLength;
  if (get_u32(p + 4) != 0) return WireError::kBadReserved;
  *m = proto::TrackerQuery{get_u32(p)};
  return WireError::kOk;
}

WireError decode_tracker_reply(const std::uint8_t* p, std::size_t len,
                               std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len < 4) return WireError::kTruncated;
  proto::TrackerReply r;
  r.channel = get_u32(p);
  if (const auto e = decode_addr_list(p + 4, len - 4, &r.peers);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_peer_list_query(const std::uint8_t* p, std::size_t len,
                                 std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len < 4) return WireError::kTruncated;
  proto::PeerListQuery r;
  r.channel = get_u32(p);
  if (const auto e = decode_addr_list(p + 4, len - 4, &r.my_peers);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_peer_list_reply(const std::uint8_t* p, std::size_t len,
                                 std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len < 4) return WireError::kTruncated;
  proto::PeerListReply r;
  r.channel = get_u32(p);
  if (const auto e = decode_addr_list(p + 4, len - 4, &r.peers);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_connect_query(const std::uint8_t* p, std::size_t len,
                               std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 8) return WireError::kBadLength;
  if (get_u32(p + 4) != 0) return WireError::kBadReserved;
  *m = proto::ConnectQuery{get_u32(p)};
  return WireError::kOk;
}

WireError decode_bitmap_body(const std::uint8_t* p, std::size_t len,
                             std::uint16_t trailing, proto::ChannelId* channel,
                             proto::BufferMap* map) {
  if (len < 12) return WireError::kTruncated;
  const std::size_t bitmap_bytes = len - 12;
  if (bitmap_bytes == 0 && trailing != 0) return WireError::kBadLength;
  *channel = get_u32(p);
  map->base = get_u64(p + 4);
  if (!get_bitmap(p + 12, bitmap_bytes, trailing, &map->have))
    return WireError::kBadReserved;
  return WireError::kOk;
}

WireError decode_connect_reply(const std::uint8_t* p, std::size_t len,
                               std::uint16_t aux, proto::Message* m) {
  if ((aux & ~(kAuxAcceptedBit | kAuxTrailingMask)) != 0)
    return WireError::kBadAux;
  proto::ConnectReply r;
  r.accepted = (aux & kAuxAcceptedBit) != 0;
  if (const auto e = decode_bitmap_body(p, len, aux & kAuxTrailingMask,
                                        &r.channel, &r.map);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_buffer_map_announce(const std::uint8_t* p, std::size_t len,
                                     std::uint16_t aux, proto::Message* m) {
  if ((aux & ~kAuxTrailingMask) != 0) return WireError::kBadAux;
  proto::BufferMapAnnounce r;
  if (const auto e = decode_bitmap_body(p, len, aux & kAuxTrailingMask,
                                        &r.channel, &r.map);
      e != WireError::kOk)
    return e;
  *m = std::move(r);
  return WireError::kOk;
}

WireError decode_data_query(const std::uint8_t* p, std::size_t len,
                            std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 12) return WireError::kBadLength;
  proto::DataQuery r;
  r.channel = get_u32(p);
  r.chunk = get_u64(p + 4);
  *m = r;
  return WireError::kOk;
}

WireError decode_data_reply(const std::uint8_t* p, std::size_t len,
                            std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len < 20) return WireError::kTruncated;
  proto::DataReply r;
  r.channel = get_u32(p);
  r.chunk = get_u64(p + 4);
  r.subpieces = get_u32(p + 12);
  r.payload_bytes = get_u32(p + 16);
  const std::uint64_t expected =
      4 + r.payload_bytes +
      kIpUdpHeader * (r.subpieces > 0 ? r.subpieces - 1 : 0);
  if (expected != len) return WireError::kBadLength;
  for (std::size_t i = 20; i < len; ++i)
    if (p[i] != 0) return WireError::kBadReserved;
  *m = r;
  return WireError::kOk;
}

WireError decode_goodbye(const std::uint8_t* p, std::size_t len,
                         std::uint16_t aux, proto::Message* m) {
  if (const auto e = expect_aux_zero(aux); e != WireError::kOk) return e;
  if (len != 4) return WireError::kBadLength;
  *m = proto::Goodbye{get_u32(p)};
  return WireError::kOk;
}

}  // namespace

std::string_view wire_error_name(WireError e) {
  switch (e) {
    case WireError::kOk: return "ok";
    case WireError::kTruncated: return "truncated";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kBadEpoch: return "bad-epoch";
    case WireError::kBadTag: return "bad-tag";
    case WireError::kBadLength: return "bad-length";
    case WireError::kBadAux: return "bad-aux";
    case WireError::kBadReserved: return "bad-reserved";
    case WireError::kUnencodable: return "unencodable";
  }
  return "unknown";
}

WireError encode_message(const proto::Message& m, std::uint16_t epoch,
                         std::vector<std::uint8_t>* out) {
  out->clear();
  const WireError e = std::visit(EncodeVisitor{out, epoch}, m);
  if (e != WireError::kOk) {
    out->clear();
    return e;
  }
  assert(out->size() == proto::wire_size(m) - kIpUdpHeader &&
         "encoded datagram must fill the sim's wire-size budget exactly");
  return WireError::kOk;
}

DecodeResult decode_message(const std::uint8_t* data, std::size_t len,
                            std::uint16_t epoch) {
  DecodeResult result;
  if (len < kHeaderBytes) {
    result.error = WireError::kTruncated;
    return result;
  }
  if (get_u16(data) != kMagic) {
    result.error = WireError::kBadMagic;
    return result;
  }
  if (data[2] != kVersion) {
    result.error = WireError::kBadVersion;
    return result;
  }
  if (get_u16(data + 4) != epoch) {
    result.error = WireError::kBadEpoch;
    return result;
  }
  if (data[3] >= kNumTags) {
    result.error = WireError::kBadTag;
    return result;
  }
  const auto tag = static_cast<Tag>(data[3]);
  const std::uint16_t aux = get_u16(data + 6);
  const std::uint8_t* body = data + kHeaderBytes;
  const std::size_t body_len = len - kHeaderBytes;
  switch (tag) {
    case Tag::kChannelListQuery:
      result.error =
          decode_channel_list_query(body, body_len, aux, &result.message);
      break;
    case Tag::kChannelListReply:
      result.error =
          decode_channel_list_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kJoinQuery:
      result.error = decode_join_query(body, body_len, aux, &result.message);
      break;
    case Tag::kJoinReply:
      result.error = decode_join_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kTrackerQuery:
      result.error =
          decode_tracker_query(body, body_len, aux, &result.message);
      break;
    case Tag::kTrackerReply:
      result.error =
          decode_tracker_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kPeerListQuery:
      result.error =
          decode_peer_list_query(body, body_len, aux, &result.message);
      break;
    case Tag::kPeerListReply:
      result.error =
          decode_peer_list_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kConnectQuery:
      result.error =
          decode_connect_query(body, body_len, aux, &result.message);
      break;
    case Tag::kConnectReply:
      result.error =
          decode_connect_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kBufferMapAnnounce:
      result.error =
          decode_buffer_map_announce(body, body_len, aux, &result.message);
      break;
    case Tag::kDataQuery:
      result.error = decode_data_query(body, body_len, aux, &result.message);
      break;
    case Tag::kDataReply:
      result.error = decode_data_reply(body, body_len, aux, &result.message);
      break;
    case Tag::kGoodbye:
      result.error = decode_goodbye(body, body_len, aux, &result.message);
      break;
  }
  if (result.error == WireError::kOk) {
    assert(proto::wire_size(result.message) == len + kIpUdpHeader &&
           "decoded message must charge the same wire bytes it arrived in");
  }
  return result;
}

}  // namespace ppsim::wire
