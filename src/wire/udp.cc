#include "wire/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace ppsim::wire {

namespace {

sockaddr_in make_sockaddr(net::IpAddress ip, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr.s_addr = htonl(ip.value());
  return sa;
}

}  // namespace

UdpTransport::UdpTransport(Config config) : config_(config) {
  assert(config_.port != 0 && "a deployment must agree on a shared port");
}

UdpTransport::~UdpTransport() {
  for (auto& [ip, sock] : sockets_) {
    if (sock.fd >= 0) ::close(sock.fd);
  }
}

void UdpTransport::attach(net::IpAddress ip, net::IspId /*isp*/,
                          net::IspCategory /*category*/,
                          const net::AccessProfile& /*profile*/,
                          Handler handler) {
  assert(!ip.is_unspecified());
  auto [it, inserted] = sockets_.try_emplace(ip);
  assert(inserted && "IP already attached");
  int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  assert(fd >= 0 && "socket() failed");
  // Data bursts (several 5.6 kB DataReplies back to back) overflow the
  // default buffers long before the protocol is actually overloaded.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &config_.socket_buffer_bytes,
               sizeof(config_.socket_buffer_bytes));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.socket_buffer_bytes,
               sizeof(config_.socket_buffer_bytes));
  sockaddr_in sa = make_sockaddr(ip, config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    // Loud on every build: a node that cannot bind its address has no
    // recovery path, and an assert would vanish under NDEBUG, leaving the
    // process running deaf. The smoke harness keys its port-retry logic
    // off this message.
    std::fprintf(stderr,
                 "ppsim-wire: bind(%s:%u) failed: %s "
                 "(address not local or port in use)\n",
                 ip.to_string().c_str(), unsigned{config_.port},
                 std::strerror(errno));
    ::close(fd);
    sockets_.erase(it);
    std::abort();
  }
  it->second.fd = fd;
  it->second.handler = std::move(handler);
}

void UdpTransport::detach(net::IpAddress ip) {
  auto it = sockets_.find(ip);
  if (it == sockets_.end()) return;
  if (it->second.fd >= 0) ::close(it->second.fd);
  sockets_.erase(it);
}

bool UdpTransport::attached(net::IpAddress ip) const {
  return sockets_.contains(ip);
}

bool UdpTransport::send(net::IpAddress from, net::IpAddress to,
                        proto::Message payload, std::uint64_t wire_bytes) {
  auto sit = sockets_.find(from);
  if (sit == sockets_.end()) return false;
  ++stats_.packets_sent;
  stats_.bytes_sent += wire_bytes;

  std::vector<std::uint8_t> datagram;
  if (encode_message(payload, config_.epoch, &datagram) != WireError::kOk) {
    ++stats_.uplink_drops;
    return false;
  }
  assert(datagram.size() + kIpUdpHeader == wire_bytes &&
         "caller must pass proto::wire_size(payload)");

  sockaddr_in dst = make_sockaddr(to, config_.port);
  const ssize_t n =
      ::sendto(sit->second.fd, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  if (n >= 0) return true;
  if (errno == ECONNREFUSED) {
    // A previous datagram to this peer drew an ICMP port-unreachable: the
    // destination is gone, which is the sim's dead-destination bucket. The
    // packet did leave our uplink, so the send itself "succeeds".
    ++stats_.dead_destination_drops;
    return true;
  }
  // EAGAIN/ENOBUFS (full socket buffer) and everything else the sender can
  // observe locally: the sim's uplink-overflow bucket.
  ++stats_.uplink_drops;
  return false;
}

void UdpTransport::note_rx_error(WireError e) {
  switch (e) {
    case WireError::kTruncated: ++rx_errors_.truncated; break;
    case WireError::kBadMagic: ++rx_errors_.bad_magic; break;
    case WireError::kBadVersion: ++rx_errors_.bad_version; break;
    case WireError::kBadEpoch: ++rx_errors_.bad_epoch; break;
    case WireError::kBadTag: ++rx_errors_.bad_tag; break;
    case WireError::kBadLength: ++rx_errors_.bad_length; break;
    case WireError::kBadAux: ++rx_errors_.bad_aux; break;
    case WireError::kBadReserved: ++rx_errors_.bad_reserved; break;
    case WireError::kOk:
    case WireError::kUnencodable:
      break;
  }
}

int UdpTransport::poll(int timeout_ms) {
  if (sockets_.empty()) return 0;
  std::vector<pollfd> fds;
  std::vector<net::IpAddress> ips;
  fds.reserve(sockets_.size());
  ips.reserve(sockets_.size());
  for (const auto& [ip, sock] : sockets_) {
    fds.push_back(pollfd{sock.fd, POLLIN, 0});
    ips.push_back(ip);
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  int enqueued = 0;
  std::uint8_t buf[kMaxDatagram];
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    for (;;) {
      sockaddr_in src{};
      socklen_t src_len = sizeof(src);
      const ssize_t n =
          ::recvfrom(fds[i].fd, buf, sizeof(buf), 0,
                     reinterpret_cast<sockaddr*>(&src), &src_len);
      if (n < 0) break;  // EAGAIN: drained (other errors: next poll retries)
      DecodeResult decoded =
          decode_message(buf, static_cast<std::size_t>(n), config_.epoch);
      if (decoded.error != WireError::kOk) {
        note_rx_error(decoded.error);
        continue;
      }
      if (rx_queue_.size() >= config_.rx_queue_limit) {
        // The wire analogue of the sim's downlink tail-drop: the node is
        // not consuming fast enough.
        ++stats_.downlink_drops;
        continue;
      }
      rx_queue_.push_back(RxEntry{
          net::IpAddress(ntohl(src.sin_addr.s_addr)), ips[i],
          std::move(decoded.message),
          static_cast<std::uint64_t>(n) + kIpUdpHeader});
      ++enqueued;
    }
  }
  return enqueued;
}

int UdpTransport::dispatch(sim::Time now, int max_deliveries) {
  int delivered = 0;
  while (delivered < max_deliveries && !rx_queue_.empty()) {
    RxEntry entry = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    auto it = sockets_.find(entry.to);
    if (it == sockets_.end() || !it->second.handler) {
      // Detached between receive and dispatch (peer left): the packet dies
      // exactly where the sim's dead-destination bucket says it does.
      ++stats_.dead_destination_drops;
      continue;
    }
    ++stats_.packets_delivered;
    Delivery delivery{entry.from, entry.to, std::move(entry.message),
                      entry.wire_bytes, now};
    if (tap_) tap_(delivery);
    it->second.handler(delivery);
    ++delivered;
  }
  return delivered;
}

}  // namespace ppsim::wire
