#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ppsim::proto {

/// All protocol knobs of a client, defaulted to the values the paper
/// reverse-engineered from PPLive 1.9 (gossip every 20 s, peer lists of at
/// most 60 addresses, tracker queries decaying to once per 5 minutes once
/// playback is healthy) plus standard mesh-pull parameters.
struct PeerConfig {
  // --- membership / gossip ---
  sim::Time gossip_period = sim::Time::seconds(20);  // paper Section 2
  int gossip_fanout = 2;           // neighbors probed per gossip round
  int max_list_size = 60;          // paper: "no more than 60 IP addresses"
  int candidate_pool_limit = 600;  // learned-but-unconnected peers kept

  // --- tracker interaction ---
  sim::Time tracker_period_initial = sim::Time::seconds(30);
  sim::Time tracker_period_steady = sim::Time::minutes(5);  // paper Section 2
  /// Neighbor count above which playback is considered "satisfactory" and
  /// tracker querying drops to the steady (5-minute) period.
  int healthy_neighbors = 8;

  // --- neighborhood ---
  int max_neighbors = 28;
  int min_neighbors = 12;       // top-up target
  int connect_batch = 5;        // attempts per arriving list (paper: "a number")
  sim::Time connect_timeout = sim::Time::seconds(3);
  sim::Time neighbor_idle_timeout = sim::Time::seconds(75);
  sim::Time topup_period = sim::Time::seconds(10);
  /// Neighborhood turnover: every period, the slowest neighbor (by EWMA
  /// latency) above the min_neighbors floor is dropped and its slot refilled
  /// from referred candidates. This is what lets response-time differences
  /// reshape *membership* (not just request routing) and drives the paper's
  /// "triangle construction" clustering.
  sim::Time optimize_period = sim::Time::seconds(15);
  /// Newly connected neighbors are exempt from optimization this long.
  sim::Time optimize_grace = sim::Time::seconds(20);

  // --- data plane ---
  sim::Time request_tick = sim::Time::millis(200);
  sim::Time request_timeout = sim::Time::millis(2500);
  int pipeline_per_neighbor = 6;   // in-flight chunk requests per neighbor
  int window_chunks = 40;          // scheduling window past the playback point
  sim::Time startup_buffer = sim::Time::seconds(8);  // playback lag vs live edge
  /// Weight of a neighbor in scheduling is (1s / ewma_latency)^selectivity:
  /// higher selectivity concentrates requests on the fastest neighbors.
  double latency_selectivity = 3.0;
  sim::Time buffermap_period = sim::Time::seconds(2);
  std::uint32_t chunk_retention = 256;  // chunks kept & advertised

  // --- resilience (fault tolerance; docs/FAULTS.md) ---
  /// Consecutive all-group tracker sweeps with no reply before the query
  /// period starts backing off (a dark tracker region should be probed,
  /// not hammered at the initial cadence). Any tracker reply resets it.
  int tracker_backoff_after = 3;
  /// Per-additional-silent-round multiplier on the query period once the
  /// backoff engages, capped at tracker_backoff_max.
  double tracker_backoff_factor = 2.0;
  sim::Time tracker_backoff_max = sim::Time::minutes(4);
  /// An established peer (had neighbors before) that has been completely
  /// isolated for this long mounts an emergency re-acquisition: an
  /// immediate all-group tracker sweep plus a connect burst from the
  /// candidate pool. Recovers neighborhoods after a regional blackout
  /// faster than the regular 30 s tracker round alone.
  sim::Time reacquire_timeout = sim::Time::seconds(12);
  /// Minimum spacing between emergency re-acquisitions.
  sim::Time reacquire_cooldown = sim::Time::seconds(30);

  // --- connectivity ---
  /// Client sits behind a NAT/firewall without traversal: it can initiate
  /// connections but silently ignores ConnectQuery from strangers (2008
  /// residential reality for most ADSL/cable subscribers). Established
  /// connections work both ways (the pinhole is open).
  bool behind_nat = false;

  // --- misc ---
  sim::Time dns_delay_min = sim::Time::millis(30);
  sim::Time dns_delay_max = sim::Time::millis(150);
};

}  // namespace ppsim::proto
