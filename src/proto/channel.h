#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace ppsim::proto {

using ChannelId = std::uint32_t;
using ChunkSeq = std::uint64_t;

/// PPLive offers both live broadcast and on-demand playback (paper
/// Section 2); the paper's measurements cover live, but the simulator
/// supports both so VoD-style studies can reuse the substrate.
enum class StreamMode : std::uint8_t {
  kLive = 0,  // source produces chunks in real time; viewers chase the edge
  kVod = 1,   // the whole program exists up front; viewers start at chunk 1
};

/// Static description of one live streaming channel.
///
/// The stream is chopped into chunks; each chunk is carried on the wire as
/// `subpieces_per_chunk` UDP sub-pieces of `subpiece_bytes` (1380 bytes in
/// PPLive 1.9, per the paper's reverse engineering). The simulator's data
/// plane requests and accounts whole chunks — the sub-piece structure is
/// preserved in wire sizing and in the per-transmission counters — which
/// keeps event counts tractable without changing who serves whom.
struct ChannelSpec {
  ChannelId id = 0;
  std::string name;
  double bitrate_bps = 400e3;           // typical PPLive live rate in 2008
  std::uint32_t subpiece_bytes = 1380;  // paper: 1380 or 690 bytes
  std::uint32_t subpieces_per_chunk = 4;
  StreamMode mode = StreamMode::kLive;
  /// Program length in chunks; only meaningful for kVod.
  ChunkSeq vod_chunks = 0;

  std::uint32_t chunk_bytes() const {
    return subpiece_bytes * subpieces_per_chunk;
  }

  /// Real-time duration of stream carried by one chunk.
  sim::Time chunk_duration() const {
    return sim::Time::from_seconds(static_cast<double>(chunk_bytes()) * 8.0 /
                                   bitrate_bps);
  }
};

}  // namespace ppsim::proto
