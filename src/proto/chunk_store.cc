#include "proto/chunk_store.h"

#include <algorithm>

namespace ppsim::proto {

bool ChunkStore::insert(ChunkSeq seq) {
  if (empty_) {
    base_ = seq;
    bits_.assign(1, true);
    highest_ = seq;
    empty_ = false;
    return true;
  }
  if (seq < base_) {
    // A chunk below the current base: extend downward if it is still within
    // the retention window (a joining peer fills its startup buffer behind
    // the first chunk it happened to receive), otherwise it was evicted.
    if (highest_ >= retention_ && seq <= highest_ - retention_) return false;
    const ChunkSeq grow = base_ - seq;
    bits_.insert(bits_.begin(), static_cast<std::size_t>(grow), false);
    base_ = seq;
  }
  const ChunkSeq off = seq - base_;
  if (off < bits_.size() && bits_[off]) return false;  // duplicate
  if (off >= bits_.size()) bits_.resize(off + 1, false);
  bits_[off] = true;
  highest_ = std::max(highest_, seq);
  if (highest_ >= retention_ && base_ < highest_ - retention_ + 1)
    evict_below(highest_ - retention_ + 1);
  return true;
}

void ChunkStore::evict_below(ChunkSeq new_base) {
  while (base_ < new_base && !bits_.empty()) {
    bits_.pop_front();
    ++base_;
  }
  if (bits_.empty()) base_ = new_base;
}

bool ChunkStore::has(ChunkSeq seq) const {
  if (empty_ || seq < base_) return false;
  const ChunkSeq off = seq - base_;
  return off < bits_.size() && bits_[off];
}

std::uint64_t ChunkStore::chunks_held() const {
  return static_cast<std::uint64_t>(
      std::count(bits_.begin(), bits_.end(), true));
}

BufferMap ChunkStore::snapshot(ChunkSeq from) const {
  BufferMap map;
  if (empty_) return map;
  map.base = std::max(from, base_);
  if (map.base > highest_) {
    map.base = highest_;
  }
  const std::size_t len = static_cast<std::size_t>(highest_ - map.base) + 1;
  map.have.resize(len, false);
  for (std::size_t i = 0; i < len; ++i) map.have[i] = has(map.base + i);
  return map;
}

}  // namespace ppsim::proto
