#pragma once

#include <cstddef>
#include <cstdint>

namespace ppsim::proto {

/// Per-client protocol counters, used by tests and by the protocol
/// ablation bench to check claims like "tracker queries decay to once per
/// five minutes" without parsing traces.
struct PeerCounters {
  // membership
  std::uint64_t tracker_queries_sent = 0;
  std::uint64_t tracker_replies = 0;
  std::uint64_t gossip_queries_sent = 0;
  std::uint64_t gossip_replies_received = 0;
  std::uint64_t gossip_queries_answered = 0;
  std::uint64_t ips_learned_from_trackers = 0;
  std::uint64_t ips_learned_from_peers = 0;

  // neighborhood
  std::uint64_t connects_attempted = 0;
  std::uint64_t connects_accepted = 0;
  std::uint64_t connects_rejected = 0;
  std::uint64_t connects_timed_out = 0;
  /// Handshakes that completed after all slots were taken by faster
  /// responders (the connect-on-arrival race).
  std::uint64_t connects_lost_race = 0;
  std::uint64_t inbound_accepted = 0;
  std::uint64_t inbound_rejected = 0;
  std::uint64_t neighbors_dropped_idle = 0;
  std::uint64_t neighbors_dropped_optimized = 0;

  // data plane
  std::uint64_t data_requests_sent = 0;
  std::uint64_t data_replies_received = 0;
  std::uint64_t data_requests_served = 0;
  std::uint64_t data_requests_unserveable = 0;
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t bytes_uploaded = 0;

  // playback
  std::uint64_t chunks_played = 0;
  std::uint64_t chunks_missed = 0;

  double continuity() const {
    const std::uint64_t total = chunks_played + chunks_missed;
    return total == 0 ? 1.0
                      : static_cast<double>(chunks_played) /
                            static_cast<double>(total);
  }
};

/// Visits every counter field as (name, value). The single enumeration
/// point for reports, metrics export, and aggregation — adding a field to
/// PeerCounters without extending this list trips the static_assert below,
/// so no counter can be silently dropped from downstream consumers.
template <typename Fn>
void for_each_field(const PeerCounters& c, Fn&& fn) {
  static_assert(sizeof(PeerCounters) == 26 * sizeof(std::uint64_t),
                "PeerCounters changed: update for_each_field and operator+=");
  fn("tracker_queries_sent", c.tracker_queries_sent);
  fn("tracker_replies", c.tracker_replies);
  fn("gossip_queries_sent", c.gossip_queries_sent);
  fn("gossip_replies_received", c.gossip_replies_received);
  fn("gossip_queries_answered", c.gossip_queries_answered);
  fn("ips_learned_from_trackers", c.ips_learned_from_trackers);
  fn("ips_learned_from_peers", c.ips_learned_from_peers);
  fn("connects_attempted", c.connects_attempted);
  fn("connects_accepted", c.connects_accepted);
  fn("connects_rejected", c.connects_rejected);
  fn("connects_timed_out", c.connects_timed_out);
  fn("connects_lost_race", c.connects_lost_race);
  fn("inbound_accepted", c.inbound_accepted);
  fn("inbound_rejected", c.inbound_rejected);
  fn("neighbors_dropped_idle", c.neighbors_dropped_idle);
  fn("neighbors_dropped_optimized", c.neighbors_dropped_optimized);
  fn("data_requests_sent", c.data_requests_sent);
  fn("data_replies_received", c.data_replies_received);
  fn("data_requests_served", c.data_requests_served);
  fn("data_requests_unserveable", c.data_requests_unserveable);
  fn("duplicate_chunks", c.duplicate_chunks);
  fn("request_timeouts", c.request_timeouts);
  fn("bytes_downloaded", c.bytes_downloaded);
  fn("bytes_uploaded", c.bytes_uploaded);
  fn("chunks_played", c.chunks_played);
  fn("chunks_missed", c.chunks_missed);
}

/// Field-wise aggregation, the building block for swarm-wide totals.
inline PeerCounters& operator+=(PeerCounters& lhs, const PeerCounters& rhs) {
  // Enumerate through for_each_field so both stay in sync by construction:
  // the name/value pairs are matched up positionally over the same list.
  std::uint64_t* fields[26];
  std::size_t i = 0;
  for_each_field(lhs, [&](const char*, const std::uint64_t& v) {
    fields[i++] = const_cast<std::uint64_t*>(&v);
  });
  i = 0;
  for_each_field(rhs, [&](const char*, const std::uint64_t& v) {
    *fields[i++] += v;
  });
  return lhs;
}

inline PeerCounters operator+(PeerCounters lhs, const PeerCounters& rhs) {
  lhs += rhs;
  return lhs;
}

}  // namespace ppsim::proto
