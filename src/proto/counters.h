#pragma once

#include <cstdint>

namespace ppsim::proto {

/// Per-client protocol counters, used by tests and by the protocol
/// ablation bench to check claims like "tracker queries decay to once per
/// five minutes" without parsing traces.
struct PeerCounters {
  // membership
  std::uint64_t tracker_queries_sent = 0;
  std::uint64_t tracker_replies = 0;
  std::uint64_t gossip_queries_sent = 0;
  std::uint64_t gossip_replies_received = 0;
  std::uint64_t gossip_queries_answered = 0;
  std::uint64_t ips_learned_from_trackers = 0;
  std::uint64_t ips_learned_from_peers = 0;

  // neighborhood
  std::uint64_t connects_attempted = 0;
  std::uint64_t connects_accepted = 0;
  std::uint64_t connects_rejected = 0;
  std::uint64_t connects_timed_out = 0;
  /// Handshakes that completed after all slots were taken by faster
  /// responders (the connect-on-arrival race).
  std::uint64_t connects_lost_race = 0;
  std::uint64_t inbound_accepted = 0;
  std::uint64_t inbound_rejected = 0;
  std::uint64_t neighbors_dropped_idle = 0;
  std::uint64_t neighbors_dropped_optimized = 0;

  // data plane
  std::uint64_t data_requests_sent = 0;
  std::uint64_t data_replies_received = 0;
  std::uint64_t data_requests_served = 0;
  std::uint64_t data_requests_unserveable = 0;
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t bytes_uploaded = 0;

  // playback
  std::uint64_t chunks_played = 0;
  std::uint64_t chunks_missed = 0;

  double continuity() const {
    const std::uint64_t total = chunks_played + chunks_missed;
    return total == 0 ? 1.0
                      : static_cast<double>(chunks_played) /
                            static_cast<double>(total);
  }
};

}  // namespace ppsim::proto
