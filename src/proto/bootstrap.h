#pragma once

#include <map>
#include <vector>

#include "net/ip.h"
#include "sim/trace.h"
#include "proto/host.h"
#include "proto/message.h"
#include "proto/tracker.h"
#include "sim/simulator.h"

namespace ppsim::proto {

/// The bootstrap / channel server (Figure 1, steps 1-4).
///
/// Serves the active channel list, and for a chosen channel returns the
/// playlink (the channel's stream source address) and one tracker address
/// per tracker group, exactly as the paper describes the join sequence.
class BootstrapServer {
 public:
  struct ChannelEntry {
    ChannelId channel = 0;
    net::IpAddress source;
    /// tracker_groups[g] lists the servers of group g; one per group is
    /// returned to each client, rotated round-robin across requests.
    std::vector<std::vector<net::IpAddress>> tracker_groups;
  };

  BootstrapServer(sim::Simulator& simulator, PeerTransport& network,
                  const HostIdentity& identity,
                  sim::Time processing_delay = sim::Time::millis(3));
  ~BootstrapServer();

  BootstrapServer(const BootstrapServer&) = delete;
  BootstrapServer& operator=(const BootstrapServer&) = delete;

  void register_channel(ChannelEntry entry);

  net::IpAddress ip() const { return identity_.ip; }
  std::uint64_t joins_served() const { return joins_served_; }

  /// Emits one "bootstrap_serve" event per answered join to `sink`; nullptr
  /// (the default) disables tracing. Purely observational.
  void set_trace_sink(sim::TraceSink* sink) { trace_ = sink; }

  /// Enables causal tracing: join replies carry a span id parented on the
  /// incoming query's span, and bootstrap_serve events gain span/parent
  /// fields. Off by default so untraced runs stay byte-identical.
  void set_causal_tracing(bool on) { causal_ = on; }

  /// Fault-injection seam: a dark bootstrap drops every request silently;
  /// joining clients keep retrying until the window closes.
  void set_dark(bool dark) { dark_ = dark; }
  bool dark() const { return dark_; }

 private:
  void handle(const PeerTransport::Delivery& delivery);
  void reply(net::IpAddress to, Message m);

  sim::Simulator& simulator_;
  PeerTransport& network_;
  HostIdentity identity_;
  sim::Time processing_delay_;
  // Ordered so the channel list is served in a stable order.
  std::map<ChannelId, ChannelEntry> channels_;
  sim::TraceSink* trace_ = nullptr;
  bool causal_ = false;
  bool dark_ = false;
  std::uint64_t rotation_ = 0;
  std::uint64_t joins_served_ = 0;
};

}  // namespace ppsim::proto
