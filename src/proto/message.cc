#include "proto/message.h"

namespace ppsim::proto {

namespace {

constexpr std::uint64_t kIpUdpHeader = 28;

struct SizeVisitor {
  std::uint64_t operator()(const ChannelListQuery&) const { return 8; }
  std::uint64_t operator()(const ChannelListReply& m) const {
    return 8 + 4 * m.channels.size();
  }
  std::uint64_t operator()(const JoinQuery&) const { return 12; }
  std::uint64_t operator()(const JoinReply& m) const {
    return 16 + 6 * m.trackers.size();
  }
  std::uint64_t operator()(const TrackerQuery&) const { return 16; }
  std::uint64_t operator()(const TrackerReply& m) const {
    return 12 + 6 * m.peers.size();
  }
  std::uint64_t operator()(const PeerListQuery& m) const {
    return 12 + 6 * m.my_peers.size();
  }
  std::uint64_t operator()(const PeerListReply& m) const {
    return 12 + 6 * m.peers.size();
  }
  std::uint64_t operator()(const ConnectQuery&) const { return 16; }
  std::uint64_t operator()(const ConnectReply& m) const {
    return 20 + (m.map.have.size() + 7) / 8;
  }
  std::uint64_t operator()(const BufferMapAnnounce& m) const {
    return 20 + (m.map.have.size() + 7) / 8;
  }
  std::uint64_t operator()(const DataQuery&) const { return 20; }
  std::uint64_t operator()(const DataReply& m) const {
    // One header per sub-piece packet the chunk is carried in.
    return m.payload_bytes + 12 + kIpUdpHeader * (m.subpieces > 0
                                                      ? m.subpieces - 1
                                                      : 0);
  }
  std::uint64_t operator()(const Goodbye&) const { return 12; }
};

struct NameVisitor {
  std::string_view operator()(const ChannelListQuery&) const {
    return "ChannelListQuery";
  }
  std::string_view operator()(const ChannelListReply&) const {
    return "ChannelListReply";
  }
  std::string_view operator()(const JoinQuery&) const { return "JoinQuery"; }
  std::string_view operator()(const JoinReply&) const { return "JoinReply"; }
  std::string_view operator()(const TrackerQuery&) const {
    return "TrackerQuery";
  }
  std::string_view operator()(const TrackerReply&) const {
    return "TrackerReply";
  }
  std::string_view operator()(const PeerListQuery&) const {
    return "PeerListQuery";
  }
  std::string_view operator()(const PeerListReply&) const {
    return "PeerListReply";
  }
  std::string_view operator()(const ConnectQuery&) const {
    return "ConnectQuery";
  }
  std::string_view operator()(const ConnectReply&) const {
    return "ConnectReply";
  }
  std::string_view operator()(const BufferMapAnnounce&) const {
    return "BufferMapAnnounce";
  }
  std::string_view operator()(const DataQuery&) const { return "DataQuery"; }
  std::string_view operator()(const DataReply&) const { return "DataReply"; }
  std::string_view operator()(const Goodbye&) const { return "Goodbye"; }
};

}  // namespace

std::uint64_t wire_size(const Message& m) {
  return kIpUdpHeader + std::visit(SizeVisitor{}, m);
}

std::string_view message_name(const Message& m) {
  return std::visit(NameVisitor{}, m);
}

}  // namespace ppsim::proto
