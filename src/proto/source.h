#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/ip.h"
#include "sim/trace.h"
#include "proto/channel.h"
#include "proto/chunk_store.h"
#include "proto/host.h"
#include "proto/message.h"
#include "proto/tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::proto {

/// The channel's origin ("playlink" target): produces one chunk per chunk
/// duration, serves data requests, answers gossip queries with its
/// connected peers, and keeps itself registered with the trackers so new
/// joiners can always find at least one serving node.
///
/// Its upload link is deliberately modest relative to the swarm's demand —
/// PPLive channels are overwhelmingly peer-served, which is precisely why
/// *peer* selection determines the traffic matrix the paper measures.
struct SourceConfig {
  int max_neighbors = 48;
  int max_list_size = 60;
  sim::Time announce_period = sim::Time::seconds(5);
  sim::Time tracker_refresh = sim::Time::seconds(60);
  sim::Time processing_delay = sim::Time::millis(2);
  std::uint32_t chunk_retention = 512;
};

class StreamSource {
 public:
  using Config = SourceConfig;

  StreamSource(sim::Simulator& simulator, PeerTransport& network,
               const HostIdentity& identity, ChannelSpec channel,
               std::vector<net::IpAddress> trackers, sim::Rng rng,
               Config config = {});
  ~StreamSource();

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  /// Starts chunk production and tracker registration.
  void start();
  /// Stops producing (the channel "ends"); the host stays attached.
  void stop();

  /// Emits one "source_serve" event per served data request to `sink`;
  /// nullptr (the default) disables tracing. Purely observational.
  void set_trace_sink(sim::TraceSink* sink) { trace_ = sink; }

  /// Enables causal tracing: replies carry a span id parented on the
  /// incoming message's span, and source_serve events gain span/parent
  /// fields. Off by default so untraced runs stay byte-identical.
  void set_causal_tracing(bool on) { causal_ = on; }

  net::IpAddress ip() const { return identity_.ip; }
  ChunkSeq live_edge() const { return store_.highest(); }
  std::uint64_t chunks_produced() const { return chunks_produced_; }
  std::uint64_t requests_served() const { return requests_served_; }
  std::size_t neighbor_count() const { return neighbors_.size(); }

 private:
  void handle(const PeerTransport::Delivery& delivery);
  void produce_chunk();
  void announce_maps();
  void refresh_trackers();
  void send(net::IpAddress to, Message m, sim::Time extra_delay);
  void touch_neighbor(net::IpAddress ip);

  sim::Simulator& simulator_;
  PeerTransport& network_;
  HostIdentity identity_;
  ChannelSpec channel_;
  std::vector<net::IpAddress> trackers_;
  sim::Rng rng_;
  Config config_;
  sim::TraceSink* trace_ = nullptr;
  bool causal_ = false;

  bool running_ = false;
  ChunkStore store_;
  std::uint64_t chunks_produced_ = 0;
  std::uint64_t requests_served_ = 0;
  // Peers that connected to the source (it serves them like any neighbor).
  struct Neighbor {
    sim::Time last_seen;
  };
  // Ordered so buffer-map announcements and gossip replies go out in a
  // deterministic (IP-sorted) order regardless of hash internals.
  std::map<net::IpAddress, Neighbor> neighbors_;
};

}  // namespace ppsim::proto
