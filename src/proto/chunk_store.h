#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "proto/channel.h"

namespace ppsim::proto {

/// Compact advertisement of which chunks a peer holds, exchanged in
/// handshakes and periodic announcements (the mesh-pull "buffer map").
struct BufferMap {
  ChunkSeq base = 0;           // first chunk described by `have`
  std::vector<bool> have;      // have[i] => holds chunk base+i

  bool has(ChunkSeq seq) const {
    if (seq < base) return false;
    const ChunkSeq off = seq - base;
    return off < have.size() && have[off];
  }

  /// Highest chunk marked present, or 0 when empty.
  ChunkSeq highest() const {
    for (std::size_t i = have.size(); i > 0; --i)
      if (have[i - 1]) return base + i - 1;
    return 0;
  }
};

/// A live peer's sliding window of received chunks.
///
/// Chunks older than `retention` below the highest stored chunk are evicted
/// (a live viewer has no reason to keep minutes-old data) and stop being
/// advertised or served.
class ChunkStore {
 public:
  explicit ChunkStore(std::uint32_t retention = 256) : retention_(retention) {}

  /// Marks a chunk received. Returns false if it was already present or has
  /// already been evicted (duplicate / too late).
  bool insert(ChunkSeq seq);

  bool has(ChunkSeq seq) const;

  /// Lowest chunk still retained (0 when empty).
  ChunkSeq base() const { return base_; }
  /// Highest chunk ever inserted (0 when empty).
  ChunkSeq highest() const { return empty_ ? 0 : highest_; }
  bool empty() const { return empty_; }

  std::uint64_t chunks_held() const;

  /// Approximate heap footprint of the retained-window bitmap (for the
  /// resource probe's live-byte gauges).
  std::size_t approx_bytes() const { return bits_.size() * sizeof(bool); }

  /// Snapshot for advertising; covers [from, highest] intersected with the
  /// retained window.
  BufferMap snapshot(ChunkSeq from) const;

 private:
  void evict_below(ChunkSeq new_base);

  std::uint32_t retention_;
  ChunkSeq base_ = 0;      // seq of bits_[0]
  ChunkSeq highest_ = 0;
  bool empty_ = true;
  std::deque<bool> bits_;
};

}  // namespace ppsim::proto
