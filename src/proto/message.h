#pragma once

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

#include "net/ip.h"
#include "proto/channel.h"
#include "proto/chunk_store.h"

namespace ppsim::proto {

/// Wire messages of the simulated protocol, modeled after the PPLive 1.9
/// exchanges the paper reverse-engineers (Figure 1, steps 1-8):
/// bootstrap/channel discovery, tracker membership, neighbor-referral
/// peer-list gossip, connection handshake, buffer maps, and chunk data.

/// Causal-tracing context carried by every protocol message. `id` names the
/// operation this message belongs to; `parent` names the operation that
/// caused it (the received message or local action it reacted to). Ids come
/// from Simulator::allocate_span_id() — a deterministic monotonic counter —
/// and are only assigned when causal tracing is enabled; both stay 0
/// otherwise. Spans are trace metadata, not wire payload: they do not
/// contribute to wire_size() and never influence protocol behavior.
struct SpanContext {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
};

/// Step (1): client asks the bootstrap/channel server for active channels.
struct ChannelListQuery {
  SpanContext span{};
};

/// Step (2): the channel list.
struct ChannelListReply {
  std::vector<ChannelId> channels;
  SpanContext span{};
};

/// Step (3): client asks for a channel's playlink + tracker set.
struct JoinQuery {
  ChannelId channel = 0;
  SpanContext span{};
};

/// Step (4): playlink (stream source) and one tracker per tracker group.
struct JoinReply {
  ChannelId channel = 0;
  net::IpAddress source;
  std::vector<net::IpAddress> trackers;
  SpanContext span{};
};

/// Client -> tracker: request active peers; also (re)announces the sender
/// as an active member of the channel.
struct TrackerQuery {
  ChannelId channel = 0;
  SpanContext span{};
};

/// Tracker -> client: random sample of active members (no locality logic;
/// the paper finds trackers act as plain databases of active peers).
struct TrackerReply {
  ChannelId channel = 0;
  std::vector<net::IpAddress> peers;
  SpanContext span{};
};

/// Steps (5)/(7): gossip query to a connected neighbor. The requester
/// encloses its own peer list, as observed in PPLive.
struct PeerListQuery {
  ChannelId channel = 0;
  std::vector<net::IpAddress> my_peers;
  SpanContext span{};
};

/// Steps (6)/(8): up to 60 of the replier's recently-connected neighbors.
struct PeerListReply {
  ChannelId channel = 0;
  std::vector<net::IpAddress> peers;
  SpanContext span{};
};

/// Connection handshake.
struct ConnectQuery {
  ChannelId channel = 0;
  SpanContext span{};
};

struct ConnectReply {
  ChannelId channel = 0;
  bool accepted = false;
  BufferMap map;  // replier's availability, so data can flow immediately
  SpanContext span{};
};

/// Periodic availability announcement to connected neighbors.
struct BufferMapAnnounce {
  ChannelId channel = 0;
  BufferMap map;
  SpanContext span{};
};

/// Request for one chunk (carried on the wire as subpieces_per_chunk
/// sub-piece requests; accounted as one transmission).
struct DataQuery {
  ChannelId channel = 0;
  ChunkSeq chunk = 0;
  SpanContext span{};
};

struct DataReply {
  ChannelId channel = 0;
  ChunkSeq chunk = 0;
  std::uint32_t subpieces = 0;
  std::uint32_t payload_bytes = 0;
  SpanContext span{};
};

/// Graceful departure notice to neighbors.
struct Goodbye {
  ChannelId channel = 0;
  SpanContext span{};
};

using Message =
    std::variant<ChannelListQuery, ChannelListReply, JoinQuery, JoinReply,
                 TrackerQuery, TrackerReply, PeerListQuery, PeerListReply,
                 ConnectQuery, ConnectReply, BufferMapAnnounce, DataQuery,
                 DataReply, Goodbye>;

/// Bytes this message occupies on the wire (IP+UDP header plus a
/// protocol-shaped payload estimate). Drives access-link serialization.
std::uint64_t wire_size(const Message& m);

/// Short name for traces and debugging, e.g. "DataQuery".
std::string_view message_name(const Message& m);

}  // namespace ppsim::proto
