#include "proto/source.h"

#include <algorithm>

namespace ppsim::proto {

StreamSource::StreamSource(sim::Simulator& simulator, PeerTransport& network,
                           const HostIdentity& identity, ChannelSpec channel,
                           std::vector<net::IpAddress> trackers, sim::Rng rng,
                           Config config)
    : simulator_(simulator),
      network_(network),
      identity_(identity),
      channel_(std::move(channel)),
      trackers_(std::move(trackers)),
      rng_(rng),
      config_(config),
      store_(channel_.mode == StreamMode::kVod &&
                     channel_.vod_chunks > config.chunk_retention
                 ? static_cast<std::uint32_t>(channel_.vod_chunks)
                 : config.chunk_retention) {
  network_.attach(identity_.ip, identity_.isp, identity_.category,
                  identity_.profile,
                  [this](const PeerTransport::Delivery& d) { handle(d); });
}

StreamSource::~StreamSource() { network_.detach(identity_.ip); }

void StreamSource::start() {
  if (running_) return;
  running_ = true;
  if (channel_.mode == StreamMode::kVod) {
    // The whole program exists up front; no real-time production.
    for (ChunkSeq seq = 1; seq <= channel_.vod_chunks; ++seq) {
      ++chunks_produced_;
      store_.insert(seq);
    }
  } else {
    produce_chunk();  // chunk 1 exists immediately; 0 is reserved as "none"
  }
  schedule_periodic(simulator_, config_.announce_period,
                    [this] {
                      if (running_) announce_maps();
                      return running_;
                    },
                    "source.announce");
  refresh_trackers();
  schedule_periodic(simulator_, config_.tracker_refresh,
                    [this] {
                      if (running_) refresh_trackers();
                      return running_;
                    },
                    "source.tracker");
}

void StreamSource::stop() { running_ = false; }

void StreamSource::send(net::IpAddress to, Message m, sim::Time extra_delay) {
  const std::uint64_t bytes = wire_size(m);
  simulator_.schedule(
      config_.processing_delay + extra_delay,
      [this, to, m = std::move(m), bytes]() mutable {
        network_.send(identity_.ip, to, std::move(m), bytes);
      },
      "source.send");
}

void StreamSource::produce_chunk() {
  if (!running_) return;
  ++chunks_produced_;
  store_.insert(chunks_produced_);
  simulator_.schedule(channel_.chunk_duration(), [this] { produce_chunk(); },
                      "source.produce");
}

void StreamSource::announce_maps() {
  // Drop neighbors that have gone quiet so the list reflects live peers.
  const sim::Time cutoff = simulator_.now() - sim::Time::seconds(90);
  std::erase_if(neighbors_,
                [cutoff](const auto& kv) { return kv.second.last_seen < cutoff; });
  if (store_.empty()) return;
  // Live sources advertise a recent window; a VoD source holds (and
  // advertises) the whole program.
  const ChunkSeq from = channel_.mode == StreamMode::kVod
                            ? store_.base()
                            : (store_.highest() > 64 ? store_.highest() - 64
                                                     : store_.base());
  BufferMapAnnounce ann{channel_.id, store_.snapshot(from)};
  for (const auto& [ip, nb] : neighbors_) {
    send(ip, Message{ann}, sim::Time::zero());
  }
}

void StreamSource::refresh_trackers() {
  for (const auto& tracker : trackers_) {
    send(tracker, Message{TrackerQuery{channel_.id}}, sim::Time::zero());
  }
}

void StreamSource::touch_neighbor(net::IpAddress ip) {
  auto it = neighbors_.find(ip);
  if (it != neighbors_.end()) it->second.last_seen = simulator_.now();
}

void StreamSource::handle(const PeerTransport::Delivery& delivery) {
  const net::IpAddress from = delivery.from;

  if (const auto* connect = std::get_if<ConnectQuery>(&delivery.payload)) {
    if (connect->channel != channel_.id) return;
    const bool accept =
        neighbors_.contains(from) ||
        neighbors_.size() < static_cast<std::size_t>(config_.max_neighbors);
    if (accept) neighbors_[from] = Neighbor{simulator_.now()};
    ConnectReply r;
    r.channel = channel_.id;
    r.accepted = accept;
    if (accept && !store_.empty()) {
      const ChunkSeq base = channel_.mode == StreamMode::kVod
                                ? store_.base()
                                : (store_.highest() > 64
                                       ? store_.highest() - 64
                                       : store_.base());
      r.map = store_.snapshot(base);
    }
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), connect->span.id};
    send(from, Message{std::move(r)}, sim::Time::zero());
    return;
  }

  if (const auto* q = std::get_if<PeerListQuery>(&delivery.payload)) {
    if (q->channel != channel_.id) return;
    touch_neighbor(from);
    PeerListReply r;
    r.channel = channel_.id;
    for (const auto& [ip, nb] : neighbors_) {
      if (ip == from) continue;
      r.peers.push_back(ip);
      if (r.peers.size() >= static_cast<std::size_t>(config_.max_list_size))
        break;
    }
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), q->span.id};
    send(from, Message{std::move(r)}, sim::Time::zero());
    return;
  }

  if (const auto* dq = std::get_if<DataQuery>(&delivery.payload)) {
    if (dq->channel != channel_.id) return;
    touch_neighbor(from);
    if (!store_.has(dq->chunk)) return;  // too old or not yet produced
    ++requests_served_;
    DataReply r{channel_.id, dq->chunk, channel_.subpieces_per_chunk,
                channel_.chunk_bytes()};
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), dq->span.id};
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "source_serve");
      ev.field("source", identity_.ip.to_string())
          .field("to", from.to_string())
          .field("chunk", static_cast<std::uint64_t>(dq->chunk))
          .field("bytes", channel_.chunk_bytes());
      if (causal_) ev.field("span", r.span.id).field("parent", r.span.parent);
      trace_->write(ev);
    }
    send(from, Message{r}, sim::Time::zero());
    return;
  }

  if (std::holds_alternative<Goodbye>(delivery.payload)) {
    neighbors_.erase(from);
    return;
  }
}

}  // namespace ppsim::proto
