#pragma once

#include "net/bandwidth.h"
#include "net/ip.h"
#include "net/isp.h"
#include "net/transport.h"
#include "proto/message.h"

namespace ppsim::proto {

/// The transport seam all protocol entities speak over. Entities hold this
/// abstract view so the same unmodified protocol logic runs over the
/// simulated network (net::Network) and the real-wire UDP transport
/// (wire::UdpTransport).
using PeerTransport = net::DatagramTransport<Message>;

/// The simulated datagram network (composition roots that need the
/// sim-specific surface — schedule(), ImpairmentOverlay, taps — keep this).
using PeerNetwork = net::Network<Message>;

/// Everything a protocol entity needs to attach itself to the network.
struct HostIdentity {
  net::IpAddress ip;
  net::IspId isp;
  net::IspCategory category = net::IspCategory::kForeign;
  net::AccessProfile profile;
};

}  // namespace ppsim::proto
