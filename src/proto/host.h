#pragma once

#include "net/bandwidth.h"
#include "net/ip.h"
#include "net/isp.h"
#include "net/transport.h"
#include "proto/message.h"

namespace ppsim::proto {

/// The datagram network all protocol entities speak over.
using PeerNetwork = net::Network<Message>;

/// Everything a protocol entity needs to attach itself to the network.
struct HostIdentity {
  net::IpAddress ip;
  net::IspId isp;
  net::IspCategory category = net::IspCategory::kForeign;
  net::AccessProfile profile;
};

}  // namespace ppsim::proto
