#include "proto/bootstrap.h"

namespace ppsim::proto {

BootstrapServer::BootstrapServer(sim::Simulator& simulator,
                                 PeerTransport& network,
                                 const HostIdentity& identity,
                                 sim::Time processing_delay)
    : simulator_(simulator),
      network_(network),
      identity_(identity),
      processing_delay_(processing_delay) {
  network_.attach(identity_.ip, identity_.isp, identity_.category,
                  identity_.profile,
                  [this](const PeerTransport::Delivery& d) { handle(d); });
}

BootstrapServer::~BootstrapServer() { network_.detach(identity_.ip); }

void BootstrapServer::register_channel(ChannelEntry entry) {
  channels_[entry.channel] = std::move(entry);
}

void BootstrapServer::reply(net::IpAddress to, Message m) {
  const std::uint64_t bytes = wire_size(m);
  simulator_.schedule(processing_delay_,
                      [this, to, m = std::move(m), bytes]() mutable {
                        network_.send(identity_.ip, to, std::move(m), bytes);
                      });
}

void BootstrapServer::handle(const PeerTransport::Delivery& delivery) {
  if (dark_) return;  // fault window: unreachable, request lost
  if (std::holds_alternative<ChannelListQuery>(delivery.payload)) {
    ChannelListReply r;
    r.channels.reserve(channels_.size());
    for (const auto& [id, entry] : channels_) r.channels.push_back(id);
    reply(delivery.from, Message{std::move(r)});
    return;
  }
  if (const auto* join = std::get_if<JoinQuery>(&delivery.payload)) {
    auto it = channels_.find(join->channel);
    if (it == channels_.end()) return;  // unknown channel: silently ignored
    const ChannelEntry& entry = it->second;
    JoinReply r;
    r.channel = entry.channel;
    r.source = entry.source;
    // One tracker per group, rotated so server load spreads.
    const std::uint64_t rot = rotation_++;
    for (const auto& group : entry.tracker_groups) {
      if (group.empty()) continue;
      r.trackers.push_back(group[rot % group.size()]);
    }
    ++joins_served_;
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), join->span.id};
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "bootstrap_serve");
      ev.field("bootstrap", identity_.ip.to_string())
          .field("to", delivery.from.to_string())
          .field("channel", static_cast<std::uint64_t>(r.channel))
          .field("trackers", static_cast<std::uint64_t>(r.trackers.size()));
      if (causal_) ev.field("span", r.span.id).field("parent", r.span.parent);
      trace_->write(ev);
    }
    reply(delivery.from, Message{std::move(r)});
  }
}

}  // namespace ppsim::proto
