#include "proto/tracker.h"

#include <algorithm>

namespace ppsim::proto {

TrackerServer::TrackerServer(sim::Simulator& simulator, PeerTransport& network,
                             const HostIdentity& identity, sim::Rng rng,
                             Config config)
    : simulator_(simulator),
      network_(network),
      identity_(identity),
      rng_(rng),
      config_(config) {
  network_.attach(identity_.ip, identity_.isp, identity_.category,
                  identity_.profile,
                  [this](const PeerTransport::Delivery& d) { handle(d); });
}

TrackerServer::~TrackerServer() { network_.detach(identity_.ip); }

void TrackerServer::refresh(ChannelId channel, net::IpAddress member) {
  auto& entries = members_[channel];
  for (auto& e : entries) {
    if (e.ip == member) {
      e.last_seen = simulator_.now();
      return;
    }
  }
  entries.push_back(Entry{member, simulator_.now()});
}

void TrackerServer::expire(ChannelId channel) {
  auto it = members_.find(channel);
  if (it == members_.end()) return;
  const sim::Time cutoff = simulator_.now() - config_.entry_ttl;
  std::erase_if(it->second,
                [cutoff](const Entry& e) { return e.last_seen < cutoff; });
}

std::size_t TrackerServer::member_count(ChannelId channel) {
  expire(channel);
  auto it = members_.find(channel);
  return it == members_.end() ? 0 : it->second.size();
}

void TrackerServer::handle(const PeerTransport::Delivery& delivery) {
  const auto* query = std::get_if<TrackerQuery>(&delivery.payload);
  if (query == nullptr) return;  // trackers speak only the tracker protocol
  if (dark_) return;             // fault window: unreachable, query lost

  const ChannelId channel = query->channel;
  expire(channel);

  // Sample *before* registering the requester so a client is never told
  // about itself; registration then keeps it discoverable by others.
  TrackerReply reply;
  reply.channel = channel;
  auto it = members_.find(channel);
  if (it != members_.end()) {
    std::vector<net::IpAddress> candidates;
    candidates.reserve(it->second.size());
    for (const auto& e : it->second)
      if (e.ip != delivery.from) candidates.push_back(e.ip);
    const auto cap = static_cast<std::size_t>(config_.max_reply_peers);
    if (config_.locality_db == nullptr) {
      // The measured PPLive behaviour: a plain uniform sample.
      reply.peers = rng_.sample(candidates, cap);
    } else {
      // ISP-aware variant: same-ISP members first, random within tiers.
      const net::IspCategory own =
          config_.locality_db->category_or_foreign(delivery.from);
      std::vector<net::IpAddress> same, other;
      for (const auto& ip : candidates) {
        (config_.locality_db->category_or_foreign(ip) == own ? same : other)
            .push_back(ip);
      }
      reply.peers = rng_.sample(same, cap);
      if (reply.peers.size() < cap) {
        auto fill = rng_.sample(other, cap - reply.peers.size());
        reply.peers.insert(reply.peers.end(), fill.begin(), fill.end());
      }
    }
  }
  refresh(channel, delivery.from);
  ++queries_served_;
  if (causal_) reply.span = SpanContext{simulator_.allocate_span_id(), query->span.id};
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "tracker_serve");
    ev.field("tracker", identity_.ip.to_string())
        .field("to", delivery.from.to_string())
        .field("channel", static_cast<std::uint64_t>(channel))
        .field("peers", static_cast<std::uint64_t>(reply.peers.size()));
    if (causal_) ev.field("span", reply.span.id).field("parent", reply.span.parent);
    trace_->write(ev);
  }

  const std::uint64_t bytes = wire_size(Message{reply});
  simulator_.schedule(
      config_.processing_delay,
      [this, to = delivery.from, reply = std::move(reply), bytes]() mutable {
        network_.send(identity_.ip, to, Message{std::move(reply)}, bytes);
      },
      "tracker.serve");
}

}  // namespace ppsim::proto
