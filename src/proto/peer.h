#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "net/ip.h"
#include "sim/trace.h"
#include "proto/channel.h"
#include "proto/chunk_store.h"
#include "proto/counters.h"
#include "proto/host.h"
#include "proto/message.h"
#include "proto/peer_config.h"
#include "proto/selection.h"
#include "proto/tracker.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::proto {

/// A PPLive-style live streaming client.
///
/// Implements the join sequence and steady-state behaviour the paper
/// reverse-engineers (Section 2):
///
///  1. DNS + bootstrap: learn the channel's playlink (stream source) and
///     one tracker per tracker group.
///  2. Query trackers for initial peer lists; *connect to listed peers the
///     moment a list arrives*.
///  3. On each established connection, immediately ask the new neighbor for
///     its peer list, then start requesting data.
///  4. Gossip: every 20 s, probe neighbors for their peer lists (enclosing
///     our own); reply to such probes with up to 60 recently connected
///     neighbors.
///  5. Once playback is healthy, tracker queries decay to once per 5 min —
///     membership knowledge then flows almost entirely through neighbors.
///
/// No topology information is used anywhere. The ISP-level traffic locality
/// the paper measures *emerges* from (2)+(3): same-ISP peers answer faster,
/// first responders win the neighbor slots, and referral then compounds the
/// bias ("triangle construction").
///
/// Lifetime: a Peer attaches to the network in its constructor and detaches
/// in leave() / destructor. Timer callbacks hold `this`, so a Peer must
/// outlive the simulator run (or be leave()d first and destroyed only after
/// the run completes — leave() makes all callbacks inert).
class Peer {
 public:
  Peer(sim::Simulator& simulator, PeerTransport& network,
       const HostIdentity& identity, ChannelSpec channel,
       net::IpAddress bootstrap, sim::Rng rng, PeerConfig config = {},
       std::unique_ptr<SelectionPolicy> policy = nullptr);
  ~Peer();

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  /// Starts the join sequence (DNS lookup, bootstrap contact, ...).
  void join();

  /// Leaves the swarm: notifies neighbors, detaches from the network, and
  /// neutralizes all pending timers. Idempotent.
  void leave();

  /// Crashes: detaches abruptly with no goodbyes — the fault-injection
  /// (churn burst) and power-failure departure path. Neighbors only find
  /// out via their own idle timeouts. Idempotent, same lifetime rules as
  /// leave().
  void crash();

  /// Routes this client's protocol trace events (tracker queries, gossip,
  /// connect races, chunk request/serve) to `sink`. nullptr (the default)
  /// disables tracing at the cost of one branch per would-be event. Set
  /// before join() to capture the join sequence. Purely observational —
  /// behaviour is identical with or without a sink.
  void set_trace_sink(sim::TraceSink* sink) { trace_ = sink; }

  /// Enables causal tracing (docs/OBSERVABILITY.md): outgoing discovery and
  /// data messages carry span ids allocated from the simulator's monotonic
  /// counter, existing trace events gain span/parent (and, for connects,
  /// referral-provenance) fields, and the startup milestones emit
  /// join_reply / chunk_delivered / playback_start events. Off by default
  /// so untraced runs stay byte-identical. Set before join().
  void set_causal_tracing(bool on) { causal_ = on; }

  bool alive() const { return alive_; }
  net::IpAddress ip() const { return identity_.ip; }
  const HostIdentity& identity() const { return identity_; }
  const PeerCounters& counters() const { return counters_; }
  const PeerConfig& config() const { return config_; }

  std::size_t neighbor_count() const { return neighbors_.size(); }
  std::vector<net::IpAddress> neighbor_ips() const;

  /// Resilience introspection (not part of PeerCounters: these only move
  /// under injected faults, and the metrics export must stay byte-stable
  /// for fault-free runs).
  /// All-group tracker sweeps issued since the last tracker reply.
  int tracker_silent_rounds() const { return tracker_silent_rounds_; }
  /// Emergency neighbor re-acquisitions mounted after total isolation.
  std::uint64_t emergency_reacquires() const { return emergency_reacquires_; }
  std::size_t candidate_pool_size() const { return pool_set_.size(); }
  bool playback_started() const { return playback_started_; }
  ChunkSeq playback_position() const { return playback_next_; }
  ChunkSeq live_edge_estimate() const { return live_edge_; }
  const ChunkStore& store() const { return store_; }

  /// Measured latency estimate this client holds for a neighbor (EWMA of
  /// request->reply times), or a negative value if unknown.
  double neighbor_latency_estimate(net::IpAddress ip) const;

  /// Approximate heap footprint of this peer's dynamic state (neighbor
  /// table, candidate pool, pending-request maps, chunk store) for the
  /// resource probe's live-byte gauges. An element-size estimate with a
  /// flat per-node allowance, not allocator-exact accounting — good enough
  /// to watch growth across peer counts, cheap enough to sum every
  /// sampling tick.
  std::size_t approx_live_bytes() const;

  /// Introspection snapshot of one neighbor's client-side state.
  struct NeighborSnapshot {
    net::IpAddress ip;
    double rtt_s = 0;      // control-RTT estimate (drives membership)
    double service_s = 0;  // data service latency (drives scheduling)
    std::uint64_t bytes_from = 0;
    std::uint64_t requests_to = 0;
    sim::Time connected_at;
  };
  std::vector<NeighborSnapshot> neighbor_snapshots() const;

 private:
  struct Neighbor {
    sim::Time connected_at;
    sim::Time last_seen;
    /// Control-message round trip (handshake, peer-list replies): a clean
    /// proximity signal, used for neighborhood optimization — this is the
    /// "latency based" selection the paper infers.
    double rtt_s = 0.6;
    /// Data-request service latency (includes the remote's uplink
    /// serialization and queueing): used for request scheduling, so load
    /// and capacity steer the data plane.
    double service_s = 0.6;
    int in_flight = 0;
    BufferMap map;
    std::uint64_t bytes_from = 0;
    std::uint64_t requests_to = 0;
    /// Causal tracing only (zero/empty otherwise): the handshake span that
    /// established this neighbor, and who referred it. Data requests to the
    /// neighbor are parented on intro_span, tying the data plane back to
    /// the referral that made it possible.
    std::uint64_t intro_span = 0;
    const char* intro_via = "";
    net::IpAddress introducer;
  };

  struct PendingData {
    net::IpAddress target;
    sim::Time sent_at;
  };

  // --- join sequence ---
  void contact_bootstrap();
  void on_join_reply(const JoinReply& r);
  void schedule_tracker_round();
  void query_trackers(bool all);

  // --- membership ---
  void learn_candidates(const std::vector<net::IpAddress>& ips,
                        bool from_tracker);
  void note_origins(const std::vector<net::IpAddress>& ips, const char* via,
                    net::IpAddress introducer, std::uint64_t span);
  void attempt_connections(const std::vector<net::IpAddress>& fresh);
  void topup_connections();
  void try_connect(const std::vector<net::IpAddress>& targets);
  void gossip_round();
  std::vector<net::IpAddress> my_peer_list() const;
  std::unordered_set<net::IpAddress> excluded_targets() const;
  void sweep_timeouts();
  void optimize_neighborhood();

  // --- data plane ---
  void request_tick();
  void playback_tick();
  void announce_buffer_maps();
  void update_live_edge();
  void maybe_start_playback();

  // --- plumbing ---
  void handle(const PeerTransport::Delivery& delivery);
  void send(net::IpAddress to, Message m, bool with_processing_delay = true);
  void add_neighbor(net::IpAddress ip, double initial_latency_s,
                    BufferMap map);
  void drop_neighbor(net::IpAddress ip, bool notify);

  sim::Simulator& simulator_;
  PeerTransport& network_;
  HostIdentity identity_;
  ChannelSpec channel_;
  net::IpAddress bootstrap_;
  sim::Rng rng_;
  PeerConfig config_;
  std::unique_ptr<SelectionPolicy> policy_;

  sim::TraceSink* trace_ = nullptr;
  bool causal_ = false;

  // --- causal-tracing state (populated only when causal_) ---
  /// How a candidate was introduced: the introducing message's span and the
  /// referrer, kept so the eventual ConnectQuery can be parented on it.
  /// First introduction wins — lineage answers "who told us about this peer
  /// first". Entries are evicted alongside the candidate pool.
  struct CandidateOrigin {
    std::uint64_t span = 0;
    net::IpAddress introducer;
    const char* via = "unknown";  // "bootstrap" | "tracker" | "gossip"
  };
  /// Origin snapshot taken when a handshake is launched, so the result
  /// event can report provenance even if the pool entry was evicted.
  struct PendingConnectSpan {
    std::uint64_t span = 0;  // the ConnectQuery's span
    CandidateOrigin origin;
  };
  std::map<net::IpAddress, CandidateOrigin> origins_;
  std::map<net::IpAddress, PendingConnectSpan> pending_connect_spans_;
  std::uint64_t join_span_ = 0;        // root span of this session
  std::uint64_t join_reply_span_ = 0;  // span of the accepted JoinReply

  bool alive_ = false;
  bool joined_ = false;

  net::IpAddress source_;
  std::vector<net::IpAddress> trackers_;

  // Candidate pool with FIFO eviction (set for dedupe, deque for order).
  std::unordered_set<net::IpAddress> pool_set_;
  std::deque<net::IpAddress> pool_fifo_;

  // Ordered maps, not unordered: every traversal below feeds either message
  // emission order or candidate/victim selection, and the simulator's
  // determinism contract requires those to be independent of hash order
  // (the ppsim-audit determinism pass enforces this; see tools/lint/).
  std::map<net::IpAddress, Neighbor> neighbors_;
  std::map<net::IpAddress, sim::Time> pending_connects_;
  std::map<ChunkSeq, PendingData> pending_data_;
  // Latest outstanding peer-list request per neighbor, for RTT sampling.
  std::map<net::IpAddress, sim::Time> pending_list_;
  // Recently departed neighbors, still eligible for referral for a while
  // ("recently connected peers").
  std::deque<net::IpAddress> recent_neighbors_;
  // Last measured control-RTT of recently departed neighbors. Re-adding a
  // known peer seeds its estimate from here instead of the blind default,
  // so neighborhood optimization never ties a measured-near peer against a
  // far one at the default and evicts on the tie-break.
  std::map<net::IpAddress, double> recent_rtt_;

  // Resilience state (see the matching PeerConfig knobs): tracker-query
  // backoff while a tracker region is dark, and emergency re-acquisition
  // after a blackout empties the neighborhood.
  int tracker_silent_rounds_ = 0;
  bool had_neighbors_ = false;
  bool isolated_ = false;
  sim::Time isolated_since_;
  sim::Time last_reacquire_ = sim::Time::minutes(-60);
  std::uint64_t emergency_reacquires_ = 0;

  ChunkStore store_;
  ChunkSeq live_edge_ = 0;
  ChunkSeq playback_next_ = 0;
  bool playback_started_ = false;

  PeerCounters counters_;
};

}  // namespace ppsim::proto
