#include "proto/selection.h"

#include <algorithm>

namespace ppsim::proto {

void sample_eligible(std::span<const net::IpAddress> from,
                     const std::unordered_set<net::IpAddress>& excluded,
                     std::size_t want, sim::Rng& rng,
                     std::vector<net::IpAddress>& taken) {
  if (taken.size() >= want) return;
  std::vector<net::IpAddress> eligible;
  eligible.reserve(from.size());
  for (const auto& ip : from) {
    if (excluded.contains(ip)) continue;
    if (std::find(taken.begin(), taken.end(), ip) != taken.end()) continue;
    eligible.push_back(ip);
  }
  auto picked = rng.sample(eligible, want - taken.size());
  taken.insert(taken.end(), picked.begin(), picked.end());
}

std::vector<net::IpAddress> ReferralSelection::choose(
    std::span<const net::IpAddress> fresh,
    std::span<const net::IpAddress> pool,
    const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
    sim::Rng& rng) {
  std::vector<net::IpAddress> out;
  sample_eligible(fresh, excluded, want, rng, out);
  sample_eligible(pool, excluded, want, rng, out);
  return out;
}

std::unique_ptr<SelectionPolicy> make_default_policy() {
  return std::make_unique<ReferralSelection>();
}

}  // namespace ppsim::proto
