#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/asn_db.h"
#include "net/ip.h"
#include "net/transport.h"
#include "sim/trace.h"
#include "proto/host.h"
#include "proto/message.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppsim::proto {

/// One PPLive-style tracker server.
///
/// The paper finds trackers act as plain membership databases: a query
/// (which doubles as an announcement) returns a uniform random sample of
/// active members, with no locality logic whatsoever. Entries expire when
/// not refreshed. PPLive deploys five *groups* of trackers at different
/// locations in China; the experiment harness instantiates one server per
/// group.
struct TrackerConfig {
  int max_reply_peers = 60;
  sim::Time entry_ttl = sim::Time::minutes(3);
  sim::Time processing_delay = sim::Time::millis(2);

  /// When set, the tracker becomes ISP-aware (the design the paper's
  /// related-work section attributes to Wu et al. [28]): replies list
  /// members from the requester's ISP first. PPLive's real trackers have
  /// no such logic — the paper's point is that locality emerges without it
  /// — so this is off by default and exists for the comparison benches.
  const net::AsnDatabase* locality_db = nullptr;
};

class TrackerServer {
 public:
  using Config = TrackerConfig;

  /// Attaches itself to the network under `identity`.
  TrackerServer(sim::Simulator& simulator, PeerTransport& network,
                const HostIdentity& identity, sim::Rng rng,
                Config config = {});
  ~TrackerServer();

  TrackerServer(const TrackerServer&) = delete;
  TrackerServer& operator=(const TrackerServer&) = delete;

  net::IpAddress ip() const { return identity_.ip; }

  /// Emits one "tracker_serve" event per answered query to `sink`; nullptr
  /// (the default) disables tracing. Purely observational.
  void set_trace_sink(sim::TraceSink* sink) { trace_ = sink; }

  /// Enables causal tracing: replies carry a span id parented on the
  /// incoming query's span, and tracker_serve events gain span/parent
  /// fields. Off by default so untraced runs stay byte-identical.
  void set_causal_tracing(bool on) { causal_ = on; }

  /// Fault-injection seam: a dark tracker silently drops every query — the
  /// server is unreachable, exactly as a client experiences a regional
  /// tracker outage over UDP. Membership entries keep aging out while dark.
  void set_dark(bool dark) { dark_ = dark; }
  bool dark() const { return dark_; }

  /// Number of live (unexpired) members of a channel as of now.
  std::size_t member_count(ChannelId channel);

  std::uint64_t queries_served() const { return queries_served_; }

 private:
  void handle(const PeerTransport::Delivery& delivery);
  void refresh(ChannelId channel, net::IpAddress member);
  void expire(ChannelId channel);

  struct Entry {
    net::IpAddress ip;
    sim::Time last_seen;
  };

  sim::Simulator& simulator_;
  PeerTransport& network_;
  HostIdentity identity_;
  sim::Rng rng_;
  Config config_;
  sim::TraceSink* trace_ = nullptr;
  bool causal_ = false;
  bool dark_ = false;
  std::uint64_t queries_served_ = 0;
  // channel -> member entries (channel populations are small enough that
  // linear expiry scans are cheaper than index maintenance)
  std::unordered_map<ChannelId, std::vector<Entry>> members_;
};

}  // namespace ppsim::proto
