#pragma once

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/ip.h"
#include "sim/rng.h"

namespace ppsim::proto {

/// Strategy hook deciding which candidate peers a client attempts to
/// connect to. The PPLive behaviour the paper observes is the default
/// (`ReferralSelection`); the baseline library provides tracker-only,
/// ISP-biased-oracle, and no-rush variants so the emergent-locality claim
/// can be ablated.
class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Whether the client gossips peer lists with neighbors at all. When
  /// false the client relies on trackers alone (BitTorrent-style); it still
  /// *answers* neighbors' gossip queries, as any protocol-compliant node
  /// must.
  virtual bool use_neighbor_referral() const { return true; }

  /// Whether neighborhood retention is latency-driven (periodically dropping
  /// the slowest neighbor). BitTorrent-style policies rotate neighbors
  /// blindly instead (optimistic-unchoke analog), knowing nothing about
  /// network distance.
  virtual bool latency_optimize() const { return true; }

  /// Whether the client starts connection attempts the moment a peer list
  /// arrives (the paper's observed PPLive behaviour, and the mechanism that
  /// turns response-time differences into neighbor locality). When false,
  /// candidates only pool up and are drawn on the periodic top-up tick.
  virtual bool connect_on_arrival() const { return true; }

  /// Picks up to `want` connection targets. `fresh` is the just-arrived
  /// list (empty on top-up ticks); `pool` is the accumulated candidate set;
  /// `excluded` holds addresses that must not be chosen (self, current
  /// neighbors, pending handshakes). May return fewer than `want`.
  virtual std::vector<net::IpAddress> choose(
      std::span<const net::IpAddress> fresh,
      std::span<const net::IpAddress> pool,
      const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
      sim::Rng& rng) = 0;
};

/// The PPLive policy: uniformly random picks, preferring the just-arrived
/// list (the client "randomly selects a number of peers from the list and
/// connects to them immediately"), topping up from the pool.
class ReferralSelection final : public SelectionPolicy {
 public:
  std::vector<net::IpAddress> choose(
      std::span<const net::IpAddress> fresh,
      std::span<const net::IpAddress> pool,
      const std::unordered_set<net::IpAddress>& excluded, std::size_t want,
      sim::Rng& rng) override;
};

std::unique_ptr<SelectionPolicy> make_default_policy();

/// Shared helper: random sample of `want` eligible addresses from `from`,
/// skipping `excluded` and anything already in `taken`.
void sample_eligible(std::span<const net::IpAddress> from,
                     const std::unordered_set<net::IpAddress>& excluded,
                     std::size_t want, sim::Rng& rng,
                     std::vector<net::IpAddress>& taken);

}  // namespace ppsim::proto
