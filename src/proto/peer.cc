#include "proto/peer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ppsim::proto {

namespace {
constexpr double kEwmaAlpha = 0.25;  // weight of the newest latency sample
}

Peer::Peer(sim::Simulator& simulator, PeerTransport& network,
           const HostIdentity& identity, ChannelSpec channel,
           net::IpAddress bootstrap, sim::Rng rng, PeerConfig config,
           std::unique_ptr<SelectionPolicy> policy)
    : simulator_(simulator),
      network_(network),
      identity_(identity),
      channel_(std::move(channel)),
      bootstrap_(bootstrap),
      rng_(rng),
      config_(config),
      policy_(policy ? std::move(policy) : make_default_policy()),
      store_(config.chunk_retention) {
  network_.attach(identity_.ip, identity_.isp, identity_.category,
                  identity_.profile,
                  [this](const PeerTransport::Delivery& d) { handle(d); });
  alive_ = true;
}

Peer::~Peer() { leave(); }

void Peer::leave() {
  if (!alive_) return;
  for (const auto& [ip, nb] : neighbors_) {
    send(ip, Message{Goodbye{channel_.id}}, /*with_processing_delay=*/false);
  }
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "peer_leave");
    ev.field("peer", identity_.ip.to_string())
        .field("bytes_down", counters_.bytes_downloaded)
        .field("bytes_up", counters_.bytes_uploaded)
        .field("continuity", counters_.continuity());
    trace_->write(ev);
  }
  alive_ = false;
  // Detach after the goodbyes were handed to the uplink; the network keeps
  // per-packet state, so detaching now still lets them out.
  network_.detach(identity_.ip);
}

void Peer::crash() {
  if (!alive_) return;
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "peer_crash");
    ev.field("peer", identity_.ip.to_string())
        .field("bytes_down", counters_.bytes_downloaded)
        .field("continuity", counters_.continuity());
    trace_->write(ev);
  }
  // No goodbyes: neighbors learn of the crash only through their idle
  // timeouts, which is what makes correlated crash bursts stressful.
  alive_ = false;
  network_.detach(identity_.ip);
}

void Peer::join() {
  if (!alive_ || joined_) return;
  joined_ = true;
  if (causal_) join_span_ = simulator_.allocate_span_id();
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "peer_join");
    ev.field("peer", identity_.ip.to_string())
        .field("isp", net::to_string(identity_.category))
        .field("channel", static_cast<std::uint64_t>(channel_.id))
        .field("nat", config_.behind_nat);
    if (causal_) ev.field("span", join_span_);
    trace_->write(ev);
  }
  // DNS resolution of the bootstrap/channel server names.
  const sim::Time dns = sim::Time::micros(rng_.uniform_int(
      config_.dns_delay_min.as_micros(), config_.dns_delay_max.as_micros()));
  simulator_.schedule(dns, [this] { contact_bootstrap(); }, "peer.join");
}

void Peer::contact_bootstrap() {
  if (!alive_) return;
  JoinQuery q{channel_.id};
  if (causal_)
    q.span = SpanContext{simulator_.allocate_span_id(), join_span_};
  send(bootstrap_, Message{q});
  // Retry until the join reply arrives (UDP may drop it).
  simulator_.schedule(
      sim::Time::seconds(3),
      [this] {
        if (alive_ && trackers_.empty()) contact_bootstrap();
      },
      "peer.join");
}

void Peer::on_join_reply(const JoinReply& r) {
  if (!trackers_.empty()) return;  // duplicate reply (retry raced)
  source_ = r.source;
  trackers_ = r.trackers;
  if (causal_) {
    join_reply_span_ = r.span.id;
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "join_reply");
      ev.field("peer", identity_.ip.to_string())
          .field("trackers", static_cast<std::uint64_t>(trackers_.size()))
          .field("span", r.span.id)
          .field("parent", r.span.parent);
      trace_->write(ev);
    }
  }

  // The source is a first-class candidate: new joiners may pull from it
  // until real neighbors are found.
  note_origins({r.source}, "bootstrap", bootstrap_, join_reply_span_);
  learn_candidates({source_}, /*from_tracker=*/false);

  query_trackers(/*all=*/true);
  schedule_tracker_round();

  // Steady-state machinery.
  schedule_periodic(simulator_, config_.gossip_period,
                    [this] {
                      if (!alive_) return false;
                      gossip_round();
                      return true;
                    },
                    "peer.gossip");
  schedule_periodic(simulator_, config_.topup_period,
                    [this] {
                      if (!alive_) return false;
                      topup_connections();
                      return true;
                    },
                    "peer.topup");
  schedule_periodic(simulator_, config_.request_tick,
                    [this] {
                      if (!alive_) return false;
                      request_tick();
                      return true;
                    },
                    "peer.request");
  schedule_periodic(simulator_, config_.buffermap_period,
                    [this] {
                      if (!alive_) return false;
                      announce_buffer_maps();
                      return true;
                    },
                    "peer.buffermap");
  schedule_periodic(simulator_, sim::Time::seconds(1),
                    [this] {
                      if (!alive_) return false;
                      sweep_timeouts();
                      return true;
                    },
                    "peer.sweep");
  schedule_periodic(simulator_, config_.optimize_period,
                    [this] {
                      if (!alive_) return false;
                      optimize_neighborhood();
                      return true;
                    },
                    "peer.optimize");
}

void Peer::optimize_neighborhood() {
  if (neighbors_.size() <= static_cast<std::size_t>(config_.min_neighbors))
    return;
  const sim::Time now = simulator_.now();
  // First trim any overflow above max_neighbors (inbound slack), slowest
  // first and regardless of grace, so headroom for new inbound handshakes
  // keeps regenerating and late joiners are not locked out of a saturated
  // swarm.
  while (neighbors_.size() > static_cast<std::size_t>(config_.max_neighbors)) {
    net::IpAddress overflow_victim;
    double overflow_worst = -1;
    for (const auto& [ip, nb] : neighbors_) {
      if (nb.rtt_s > overflow_worst) {
        overflow_worst = nb.rtt_s;
        overflow_victim = ip;
      }
    }
    ++counters_.neighbors_dropped_optimized;
    drop_neighbor(overflow_victim, /*notify=*/true);
  }
  if (neighbors_.size() <= static_cast<std::size_t>(config_.min_neighbors))
    return;
  net::IpAddress victim;
  if (policy_->latency_optimize()) {
    // Drop the slowest mature neighbor; its slot is refilled from referred
    // candidates on the next list arrival / top-up tick.
    double best_rtt = std::numeric_limits<double>::infinity();
    double worst_latency = -1;
    for (const auto& [ip, nb] : neighbors_) {
      best_rtt = std::min(best_rtt, nb.rtt_s);
      if (now - nb.connected_at < config_.optimize_grace) continue;
      if (nb.rtt_s > worst_latency) {
        worst_latency = nb.rtt_s;
        victim = ip;
      }
    }
    if (worst_latency < 0) return;
    // Churn damping: displacement is only worthwhile when the victim is
    // actually distant relative to the best the neighborhood offers.
    // Without this, a fully near/equal neighborhood rotates a member every
    // round on estimate noise alone, and the victim choice degenerates to
    // a tie-break on traversal order.
    if (worst_latency <= std::max(1.5 * best_rtt, best_rtt + 0.03)) return;
  } else {
    // Distance-blind turnover (BitTorrent's optimistic-unchoke analog):
    // rotate a random mature neighbor.
    std::vector<net::IpAddress> mature;
    for (const auto& [ip, nb] : neighbors_) {
      if (now - nb.connected_at >= config_.optimize_grace) mature.push_back(ip);
    }
    if (mature.empty()) return;
    victim = mature[static_cast<std::size_t>(rng_.next_below(mature.size()))];
  }
  ++counters_.neighbors_dropped_optimized;
  drop_neighbor(victim, /*notify=*/true);
}

void Peer::schedule_tracker_round() {
  const bool healthy =
      neighbors_.size() >= static_cast<std::size_t>(config_.healthy_neighbors);
  sim::Time period = healthy ? config_.tracker_period_steady
                             : config_.tracker_period_initial;
  // Dark-tracker backoff: once several consecutive all-group sweeps have
  // gone unanswered (the region is unreachable, not just lossy), probe at
  // an exponentially growing period instead of hammering the initial
  // cadence. Any tracker reply resets the streak.
  if (tracker_silent_rounds_ >= config_.tracker_backoff_after) {
    const double factor = std::pow(
        config_.tracker_backoff_factor,
        tracker_silent_rounds_ - config_.tracker_backoff_after + 1);
    period = std::min(sim::scale(period, factor), config_.tracker_backoff_max);
  }
  simulator_.schedule(
      period,
      [this] {
        if (!alive_) return;
        const bool now_healthy =
            neighbors_.size() >=
            static_cast<std::size_t>(config_.healthy_neighbors);
        // Unhealthy peers sweep every tracker group; healthy ones ping a
        // single tracker to stay registered (and discoverable).
        if (!now_healthy) ++tracker_silent_rounds_;
        query_trackers(/*all=*/!now_healthy);
        schedule_tracker_round();
      },
      "peer.tracker");
}

void Peer::query_trackers(bool all) {
  if (trackers_.empty()) return;
  // One span per round: the queries of a sweep are copies of the same
  // operation, so each reply parents back to the round that asked.
  TrackerQuery q{channel_.id};
  if (causal_)
    q.span = SpanContext{simulator_.allocate_span_id(), join_reply_span_};
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "tracker_query");
    ev.field("peer", identity_.ip.to_string())
        .field("all", all)
        .field("trackers",
               static_cast<std::uint64_t>(all ? trackers_.size() : 1));
    if (causal_) ev.field("span", q.span.id).field("parent", q.span.parent);
    trace_->write(ev);
  }
  if (all) {
    for (const auto& t : trackers_) {
      send(t, Message{q});
      ++counters_.tracker_queries_sent;
    }
  } else {
    const auto& t =
        trackers_[static_cast<std::size_t>(rng_.next_below(trackers_.size()))];
    send(t, Message{q});
    ++counters_.tracker_queries_sent;
  }
}

void Peer::learn_candidates(const std::vector<net::IpAddress>& ips,
                            bool from_tracker) {
  for (const auto& ip : ips) {
    if (ip == identity_.ip || ip.is_unspecified()) continue;
    if (from_tracker)
      ++counters_.ips_learned_from_trackers;
    else
      ++counters_.ips_learned_from_peers;
    if (pool_set_.insert(ip).second) {
      pool_fifo_.push_back(ip);
      while (pool_fifo_.size() >
             static_cast<std::size_t>(config_.candidate_pool_limit)) {
        if (causal_) origins_.erase(pool_fifo_.front());
        pool_set_.erase(pool_fifo_.front());
        pool_fifo_.pop_front();
      }
    }
  }
}

void Peer::note_origins(const std::vector<net::IpAddress>& ips,
                        const char* via, net::IpAddress introducer,
                        std::uint64_t span) {
  if (!causal_) return;
  for (const auto& ip : ips) {
    if (ip == identity_.ip || ip.is_unspecified()) continue;
    origins_.emplace(ip, CandidateOrigin{span, introducer, via});
  }
}

std::unordered_set<net::IpAddress> Peer::excluded_targets() const {
  std::unordered_set<net::IpAddress> excluded;
  excluded.insert(identity_.ip);
  excluded.insert(bootstrap_);
  for (const auto& t : trackers_) excluded.insert(t);
  for (const auto& [ip, nb] : neighbors_) excluded.insert(ip);
  for (const auto& [ip, t] : pending_connects_) excluded.insert(ip);
  return excluded;
}

void Peer::attempt_connections(const std::vector<net::IpAddress>& fresh) {
  if (!policy_->connect_on_arrival()) return;
  // Handshakes are raced: attempts are budgeted against *established*
  // neighbors only, so overlapping batches compete for the remaining slots
  // and the fastest responders win them. This is the mechanism the paper
  // infers: "a peer always tries to connect to the listed peers as soon as
  // the list is received", and same-ISP peers answer first.
  const std::size_t have = neighbors_.size();
  if (have >= static_cast<std::size_t>(config_.max_neighbors)) return;
  // Deliberately attempt a full batch even when only one slot is free: the
  // surplus handshakes ARE the race, and the late completions are turned
  // away (connects_lost_race) once the fastest responders took the slots.
  const std::size_t want = static_cast<std::size_t>(config_.connect_batch);
  std::vector<net::IpAddress> pool(pool_fifo_.begin(), pool_fifo_.end());
  try_connect(
      policy_->choose(fresh, pool, excluded_targets(), want, rng_));
}

void Peer::topup_connections() {
  const std::size_t have = neighbors_.size() + pending_connects_.size();
  if (have >= static_cast<std::size_t>(config_.min_neighbors)) return;
  const std::size_t want =
      static_cast<std::size_t>(config_.min_neighbors) - have;
  std::vector<net::IpAddress> pool(pool_fifo_.begin(), pool_fifo_.end());
  try_connect(policy_->choose({}, pool, excluded_targets(),
                              std::min<std::size_t>(want, 4), rng_));
}

void Peer::try_connect(const std::vector<net::IpAddress>& targets) {
  for (const auto& ip : targets) {
    if (neighbors_.contains(ip) || pending_connects_.contains(ip)) continue;
    pending_connects_[ip] = simulator_.now();
    ++counters_.connects_attempted;
    ConnectQuery q{channel_.id};
    CandidateOrigin origin;
    if (causal_) {
      if (auto it = origins_.find(ip); it != origins_.end())
        origin = it->second;
      q.span = SpanContext{simulator_.allocate_span_id(),
                           origin.span != 0 ? origin.span : join_span_};
      pending_connect_spans_[ip] = PendingConnectSpan{q.span.id, origin};
    }
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "connect_attempt");
      ev.field("peer", identity_.ip.to_string())
          .field("to", ip.to_string());
      if (causal_) {
        ev.field("span", q.span.id)
            .field("parent", q.span.parent)
            .field("via", origin.via)
            .field("introducer", origin.introducer.to_string());
      }
      trace_->write(ev);
    }
    send(ip, Message{q});
  }
}

std::vector<net::IpAddress> Peer::my_peer_list() const {
  // "Recently connected peers": current neighbors first, then peers that
  // recently left the neighborhood, capped at the protocol's 60.
  std::vector<net::IpAddress> list;
  list.reserve(neighbors_.size());
  for (const auto& [ip, nb] : neighbors_) list.push_back(ip);
  for (const auto& ip : recent_neighbors_) {
    if (list.size() >= static_cast<std::size_t>(config_.max_list_size)) break;
    if (std::find(list.begin(), list.end(), ip) == list.end())
      list.push_back(ip);
  }
  if (list.size() > static_cast<std::size_t>(config_.max_list_size))
    list.resize(static_cast<std::size_t>(config_.max_list_size));
  return list;
}

void Peer::gossip_round() {
  if (!policy_->use_neighbor_referral()) return;
  if (neighbors_.empty()) return;
  std::vector<net::IpAddress> ips;
  ips.reserve(neighbors_.size());
  for (const auto& [ip, nb] : neighbors_) ips.push_back(ip);
  auto picked = rng_.sample(
      ips, static_cast<std::size_t>(std::max(config_.gossip_fanout, 1)));
  PeerListQuery q{channel_.id, my_peer_list()};
  if (causal_)
    q.span = SpanContext{simulator_.allocate_span_id(), join_span_};
  if (trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "gossip_query");
    ev.field("peer", identity_.ip.to_string())
        .field("fanout", static_cast<std::uint64_t>(picked.size()));
    if (causal_) ev.field("span", q.span.id).field("parent", q.span.parent);
    trace_->write(ev);
  }
  for (const auto& ip : picked) {
    ++counters_.gossip_queries_sent;
    pending_list_[ip] = simulator_.now();
    send(ip, Message{q});
  }
}

void Peer::sweep_timeouts() {
  const sim::Time now = simulator_.now();

  // Handshakes that never completed.
  for (auto it = pending_connects_.begin(); it != pending_connects_.end();) {
    if (now - it->second > config_.connect_timeout) {
      ++counters_.connects_timed_out;
      if (trace_ != nullptr) {
        sim::TraceEvent ev(now, "connect_result");
        ev.field("peer", identity_.ip.to_string())
            .field("from", it->first.to_string())
            .field("outcome", "timeout");
        if (causal_) {
          PendingConnectSpan pcs;
          if (auto ps = pending_connect_spans_.find(it->first);
              ps != pending_connect_spans_.end())
            pcs = ps->second;
          ev.field("span", pcs.span)
              .field("via", pcs.origin.via)
              .field("introducer", pcs.origin.introducer.to_string());
        }
        trace_->write(ev);
      }
      if (causal_) pending_connect_spans_.erase(it->first);
      it = pending_connects_.erase(it);
    } else {
      ++it;
    }
  }

  // Data requests that never came back: free the slot so the chunk can be
  // rescheduled to another neighbor on the next tick.
  for (auto it = pending_data_.begin(); it != pending_data_.end();) {
    if (now - it->second.sent_at > config_.request_timeout) {
      auto nb = neighbors_.find(it->second.target);
      if (nb != neighbors_.end()) {
        nb->second.in_flight = std::max(0, nb->second.in_flight - 1);
        // Penalize the estimate so the scheduler shies away from it.
        nb->second.service_s = std::min(5.0, nb->second.service_s * 1.5);
      }
      ++counters_.request_timeouts;
      it = pending_data_.erase(it);
    } else {
      ++it;
    }
  }

  // Idle neighbors.
  std::vector<net::IpAddress> idle;
  for (const auto& [ip, nb] : neighbors_) {
    if (now - nb.last_seen > config_.neighbor_idle_timeout) idle.push_back(ip);
  }
  for (const auto& ip : idle) {
    ++counters_.neighbors_dropped_idle;
    drop_neighbor(ip, /*notify=*/true);
  }

  // Blackout recovery: an established peer stripped of every neighbor (a
  // regional outage took them all) mounts an emergency re-acquisition
  // instead of waiting out the regular tracker round — an immediate
  // all-group sweep plus a connect burst from the candidate pool.
  if (neighbors_.empty()) {
    if (had_neighbors_ && !isolated_) {
      isolated_ = true;
      isolated_since_ = now;
    }
    if (isolated_ && now - isolated_since_ >= config_.reacquire_timeout &&
        now - last_reacquire_ >= config_.reacquire_cooldown) {
      last_reacquire_ = now;
      ++emergency_reacquires_;
      if (trace_ != nullptr) {
        sim::TraceEvent ev(now, "peer_reacquire");
        ev.field("peer", identity_.ip.to_string())
            .field("isolated_s", (now - isolated_since_).as_seconds())
            .field("pool", static_cast<std::uint64_t>(pool_set_.size()));
        trace_->write(ev);
      }
      query_trackers(/*all=*/true);
      std::vector<net::IpAddress> pool(pool_fifo_.begin(), pool_fifo_.end());
      try_connect(policy_->choose(
          {}, pool, excluded_targets(),
          static_cast<std::size_t>(config_.connect_batch), rng_));
    }
  } else {
    isolated_ = false;
  }
}

void Peer::update_live_edge() {
  ChunkSeq edge = store_.highest();
  for (const auto& [ip, nb] : neighbors_) {
    edge = std::max(edge, nb.map.highest());
  }
  live_edge_ = std::max(live_edge_, edge);
}

void Peer::maybe_start_playback() {
  if (playback_started_ || live_edge_ == 0) return;
  if (channel_.mode == StreamMode::kVod) {
    // On demand: always from the beginning of the program.
    playback_next_ = 1;
  } else {
    const std::uint64_t buffer_chunks = static_cast<std::uint64_t>(
        config_.startup_buffer.as_seconds() /
        channel_.chunk_duration().as_seconds());
    // Begin behind the live edge by the startup buffer (or at chunk 1
    // early in the broadcast when less history exists).
    playback_next_ =
        live_edge_ > buffer_chunks ? live_edge_ - buffer_chunks : 1;
  }
  playback_started_ = true;
  if (causal_ && trace_ != nullptr) {
    sim::TraceEvent ev(simulator_.now(), "playback_start");
    ev.field("peer", identity_.ip.to_string())
        .field("position", static_cast<std::uint64_t>(playback_next_))
        .field("edge", static_cast<std::uint64_t>(live_edge_))
        .field("span", simulator_.allocate_span_id())
        .field("parent", join_span_);
    trace_->write(ev);
  }
  schedule_periodic(simulator_, channel_.chunk_duration(),
                    [this] {
                      if (!alive_) return false;
                      playback_tick();
                      return true;
                    },
                    "peer.playback");
}

void Peer::playback_tick() {
  if (playback_next_ == 0) playback_next_ = 1;
  // A VoD viewing ends at the last chunk of the program.
  if (channel_.mode == StreamMode::kVod &&
      playback_next_ > channel_.vod_chunks)
    return;
  // Never play past the live edge; if we catch up (edge stalled), wait.
  if (playback_next_ > live_edge_) return;
  if (store_.has(playback_next_))
    ++counters_.chunks_played;
  else
    ++counters_.chunks_missed;
  ++playback_next_;
}

void Peer::request_tick() {
  update_live_edge();
  maybe_start_playback();
  if (!playback_started_) return;

  const ChunkSeq from = playback_next_ == 0 ? 1 : playback_next_;
  const ChunkSeq to = std::min(
      live_edge_, from + static_cast<ChunkSeq>(config_.window_chunks));

  int issued = 0;
  const int kMaxPerTick = 10;
  for (ChunkSeq seq = from; seq <= to && issued < kMaxPerTick; ++seq) {
    if (store_.has(seq) || pending_data_.contains(seq)) continue;

    // Neighbors that advertise the chunk and still have pipeline room.
    std::vector<net::IpAddress> holders;
    std::vector<double> weights;
    for (auto& [ip, nb] : neighbors_) {
      if (nb.in_flight >= config_.pipeline_per_neighbor) continue;
      if (!nb.map.has(seq)) continue;
      holders.push_back(ip);
      // Latency-based preference: the fastest neighbors get most requests.
      // Dividing by outstanding requests keeps the pipeline balanced so a
      // single fast neighbor cannot absorb the whole stream.
      const double lat = std::max(nb.service_s, 1e-3);
      weights.push_back(std::pow(1.0 / lat, config_.latency_selectivity) /
                        (1.0 + nb.in_flight));
    }
    if (holders.empty()) continue;
    const std::size_t pick = rng_.weighted_index(weights);
    const net::IpAddress target = holders[pick];

    Neighbor& nb = neighbors_.at(target);
    ++nb.in_flight;
    ++nb.requests_to;
    pending_data_[seq] = PendingData{target, simulator_.now()};
    ++counters_.data_requests_sent;
    ++issued;
    DataQuery q{channel_.id, seq};
    if (causal_) {
      // Parent on the handshake that established the serving neighbor, so
      // the data plane chains back to the referral that made it possible.
      q.span = SpanContext{
          simulator_.allocate_span_id(),
          nb.intro_span != 0 ? nb.intro_span : join_span_};
    }
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "data_request");
      ev.field("peer", identity_.ip.to_string())
          .field("to", target.to_string())
          .field("chunk", static_cast<std::uint64_t>(seq));
      if (causal_) ev.field("span", q.span.id).field("parent", q.span.parent);
      trace_->write(ev);
    }
    send(target, Message{q}, /*with_processing_delay=*/false);
  }
}

void Peer::announce_buffer_maps() {
  if (store_.empty() || neighbors_.empty()) return;
  // Live viewers advertise a recent window; VoD viewers advertise their
  // whole retained range (positions differ wildly across the audience).
  const ChunkSeq base = channel_.mode == StreamMode::kVod
                            ? store_.base()
                            : (store_.highest() > 64 ? store_.highest() - 64
                                                     : store_.base());
  BufferMapAnnounce ann{channel_.id, store_.snapshot(base)};
  for (const auto& [ip, nb] : neighbors_) {
    send(ip, Message{ann}, /*with_processing_delay=*/false);
  }
}

void Peer::send(net::IpAddress to, Message m, bool with_processing_delay) {
  const std::uint64_t bytes = wire_size(m);
  if (!with_processing_delay) {
    network_.send(identity_.ip, to, std::move(m), bytes);
    return;
  }
  // Application-layer processing before the packet reaches the socket.
  const sim::Time proc = sim::Time::micros(rng_.uniform_int(500, 3000));
  simulator_.schedule(
      proc,
      [this, to, m = std::move(m), bytes]() mutable {
        if (!alive_) return;
        network_.send(identity_.ip, to, std::move(m), bytes);
      },
      "peer.send");
}

void Peer::add_neighbor(net::IpAddress ip, double initial_latency_s,
                        BufferMap map) {
  Neighbor nb;
  nb.connected_at = simulator_.now();
  nb.last_seen = simulator_.now();
  nb.rtt_s = std::max(initial_latency_s, 1e-3);
  // A remembered measurement beats the blind handshake default.
  if (auto cached = recent_rtt_.find(ip); cached != recent_rtt_.end())
    nb.rtt_s = std::min(nb.rtt_s, std::max(cached->second, 1e-3));
  // Until measured, assume service latency tracks proximity.
  nb.service_s = nb.rtt_s + 0.05;
  nb.map = std::move(map);
  neighbors_[ip] = std::move(nb);
  had_neighbors_ = true;
  isolated_ = false;
}

void Peer::drop_neighbor(net::IpAddress ip, bool notify) {
  auto it = neighbors_.find(ip);
  if (it == neighbors_.end()) return;
  if (notify) send(ip, Message{Goodbye{channel_.id}});
  recent_rtt_[ip] = it->second.rtt_s;
  neighbors_.erase(it);
  recent_neighbors_.push_front(ip);
  while (recent_neighbors_.size() > 32) {
    const net::IpAddress evicted = recent_neighbors_.back();
    recent_neighbors_.pop_back();
    if (std::find(recent_neighbors_.begin(), recent_neighbors_.end(),
                  evicted) == recent_neighbors_.end())
      recent_rtt_.erase(evicted);
  }
  // Outstanding requests to a dropped neighbor will never be answered.
  pending_list_.erase(ip);
  std::erase_if(pending_data_, [ip](const auto& kv) {
    return kv.second.target == ip;
  });
}

std::vector<net::IpAddress> Peer::neighbor_ips() const {
  std::vector<net::IpAddress> out;
  out.reserve(neighbors_.size());
  for (const auto& [ip, nb] : neighbors_) out.push_back(ip);
  return out;
}

std::vector<Peer::NeighborSnapshot> Peer::neighbor_snapshots() const {
  std::vector<NeighborSnapshot> out;
  out.reserve(neighbors_.size());
  for (const auto& [ip, nb] : neighbors_) {
    out.push_back(NeighborSnapshot{ip, nb.rtt_s, nb.service_s, nb.bytes_from,
                                   nb.requests_to, nb.connected_at});
  }
  std::sort(out.begin(), out.end(),
            [](const NeighborSnapshot& a, const NeighborSnapshot& b) {
              return a.bytes_from > b.bytes_from;
            });
  return out;
}

double Peer::neighbor_latency_estimate(net::IpAddress ip) const {
  auto it = neighbors_.find(ip);
  return it == neighbors_.end() ? -1.0 : it->second.rtt_s;
}

std::size_t Peer::approx_live_bytes() const {
  // Flat allowance for the node bookkeeping (rb-tree / hash-bucket links)
  // that element sizes alone would under-count.
  constexpr std::size_t kNodeOverhead = 48;
  std::size_t total_bytes = 0;
  total_bytes += origins_.size() *
           (sizeof(net::IpAddress) + sizeof(CandidateOrigin) + kNodeOverhead);
  total_bytes += pending_connect_spans_.size() *
           (sizeof(net::IpAddress) + sizeof(PendingConnectSpan) +
            kNodeOverhead);
  total_bytes += trackers_.capacity() * sizeof(net::IpAddress);
  total_bytes += pool_set_.size() * (sizeof(net::IpAddress) + kNodeOverhead);
  total_bytes += pool_fifo_.size() * sizeof(net::IpAddress);
  total_bytes += neighbors_.size() *
           (sizeof(net::IpAddress) + sizeof(Neighbor) + kNodeOverhead);
  for (const auto& [ip, n] : neighbors_)
    total_bytes += n.map.have.capacity() / 8;  // vector<bool> packs 8 per byte
  total_bytes += pending_connects_.size() *
           (sizeof(net::IpAddress) + sizeof(sim::Time) + kNodeOverhead);
  total_bytes += pending_data_.size() *
           (sizeof(ChunkSeq) + sizeof(PendingData) + kNodeOverhead);
  total_bytes += pending_list_.size() *
           (sizeof(net::IpAddress) + sizeof(sim::Time) + kNodeOverhead);
  total_bytes += recent_neighbors_.size() * sizeof(net::IpAddress);
  total_bytes += recent_rtt_.size() *
           (sizeof(net::IpAddress) + sizeof(double) + kNodeOverhead);
  total_bytes += store_.approx_bytes();
  return total_bytes;
}

void Peer::handle(const PeerTransport::Delivery& delivery) {
  if (!alive_) return;
  const net::IpAddress from = delivery.from;

  if (const auto* jr = std::get_if<JoinReply>(&delivery.payload)) {
    if (jr->channel == channel_.id) on_join_reply(*jr);
    return;
  }

  if (const auto* tr = std::get_if<TrackerReply>(&delivery.payload)) {
    if (tr->channel != channel_.id) return;
    ++counters_.tracker_replies;
    tracker_silent_rounds_ = 0;  // the region answers; stop backing off
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "tracker_reply");
      ev.field("peer", identity_.ip.to_string())
          .field("from", from.to_string())
          .field("peers", static_cast<std::uint64_t>(tr->peers.size()));
      if (causal_)
        ev.field("span", tr->span.id).field("parent", tr->span.parent);
      trace_->write(ev);
    }
    note_origins(tr->peers, "tracker", from, tr->span.id);
    learn_candidates(tr->peers, /*from_tracker=*/true);
    attempt_connections(tr->peers);
    return;
  }

  if (const auto* cq = std::get_if<ConnectQuery>(&delivery.payload)) {
    if (cq->channel != channel_.id) return;
    // NATed clients never see unsolicited connection attempts; the
    // initiator's handshake times out, exactly like a 2008 home router
    // dropping unsolicited UDP.
    if (config_.behind_nat && !neighbors_.contains(from)) return;
    // Accept with some slack over max_neighbors so handshakes stay roughly
    // symmetric; beyond that, reject.
    const bool accept =
        neighbors_.contains(from) ||
        neighbors_.size() <
            static_cast<std::size_t>(config_.max_neighbors) + 4;
    if (accept) {
      if (!neighbors_.contains(from)) {
        add_neighbor(from, /*initial_latency_s=*/0.6, BufferMap{});
        ++counters_.inbound_accepted;
        if (causal_) {
          Neighbor& n = neighbors_[from];
          n.intro_span = cq->span.id;
          n.intro_via = "inbound";
          n.introducer = from;
        }
      }
    } else {
      ++counters_.inbound_rejected;
    }
    ConnectReply r;
    r.channel = channel_.id;
    r.accepted = accept;
    if (accept && !store_.empty()) {
      const ChunkSeq base = channel_.mode == StreamMode::kVod
                                ? store_.base()
                                : (store_.highest() > 64
                                       ? store_.highest() - 64
                                       : store_.base());
      r.map = store_.snapshot(base);
    }
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), cq->span.id};
    send(from, Message{std::move(r)});
    return;
  }

  if (const auto* cr = std::get_if<ConnectReply>(&delivery.payload)) {
    if (cr->channel != channel_.id) return;
    auto pending = pending_connects_.find(from);
    if (pending == pending_connects_.end()) return;  // late or unsolicited
    const double handshake_s =
        (simulator_.now() - pending->second).as_seconds();
    pending_connects_.erase(pending);
    PendingConnectSpan pcs;
    if (causal_) {
      if (auto ps = pending_connect_spans_.find(from);
          ps != pending_connect_spans_.end()) {
        pcs = ps->second;
        pending_connect_spans_.erase(ps);
      }
    }
    const auto trace_connect = [&](const char* outcome) {
      if (trace_ == nullptr) return;
      sim::TraceEvent ev(simulator_.now(), "connect_result");
      ev.field("peer", identity_.ip.to_string())
          .field("from", from.to_string())
          .field("outcome", outcome)
          .field("handshake_s", handshake_s);
      if (causal_) {
        ev.field("span", cr->span.id)
            .field("parent", cr->span.parent)
            .field("via", pcs.origin.via)
            .field("introducer", pcs.origin.introducer.to_string());
      }
      trace_->write(ev);
    };
    if (!cr->accepted) {
      ++counters_.connects_rejected;
      trace_connect("rejected");
      return;
    }
    if (neighbors_.size() >= static_cast<std::size_t>(config_.max_neighbors)) {
      // Lost the race: faster responders already filled the slots.
      ++counters_.connects_lost_race;
      trace_connect("lost_race");
      send(from, Message{Goodbye{channel_.id}});
      return;
    }
    ++counters_.connects_accepted;
    trace_connect("accepted");
    add_neighbor(from, handshake_s, cr->map);
    if (causal_) {
      Neighbor& n = neighbors_[from];
      n.intro_span = pcs.span;
      n.intro_via = pcs.origin.via;
      n.introducer = pcs.origin.introducer;
    }
    update_live_edge();
    // Paper: upon establishing a connection, first ask the new neighbor for
    // its peer list, then request data (data flows on the next tick).
    if (policy_->use_neighbor_referral()) {
      ++counters_.gossip_queries_sent;
      pending_list_[from] = simulator_.now();
      PeerListQuery plq{channel_.id, my_peer_list()};
      if (causal_)
        plq.span = SpanContext{simulator_.allocate_span_id(), cr->span.id};
      send(from, Message{std::move(plq)});
    }
    return;
  }

  if (const auto* plq = std::get_if<PeerListQuery>(&delivery.payload)) {
    if (plq->channel != channel_.id) return;
    ++counters_.gossip_queries_answered;
    // The requester encloses its own list; both sides learn.
    note_origins(plq->my_peers, "gossip", from, plq->span.id);
    learn_candidates(plq->my_peers, /*from_tracker=*/false);
    if (auto it = neighbors_.find(from); it != neighbors_.end())
      it->second.last_seen = simulator_.now();
    PeerListReply r{channel_.id, my_peer_list()};
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), plq->span.id};
    send(from, Message{std::move(r)});
    return;
  }

  if (const auto* plr = std::get_if<PeerListReply>(&delivery.payload)) {
    if (plr->channel != channel_.id) return;
    ++counters_.gossip_replies_received;
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "gossip_reply");
      ev.field("peer", identity_.ip.to_string())
          .field("from", from.to_string())
          .field("peers", static_cast<std::uint64_t>(plr->peers.size()));
      if (causal_)
        ev.field("span", plr->span.id).field("parent", plr->span.parent);
      trace_->write(ev);
    }
    if (auto it = neighbors_.find(from); it != neighbors_.end()) {
      it->second.last_seen = simulator_.now();
      if (auto pend = pending_list_.find(from); pend != pending_list_.end()) {
        const double sample = (simulator_.now() - pend->second).as_seconds();
        it->second.rtt_s = (1 - kEwmaAlpha) * it->second.rtt_s +
                           kEwmaAlpha * sample;
        pending_list_.erase(pend);
      }
    }
    note_origins(plr->peers, "gossip", from, plr->span.id);
    learn_candidates(plr->peers, /*from_tracker=*/false);
    // The observed PPLive behaviour: connect to listed peers immediately.
    attempt_connections(plr->peers);
    return;
  }

  if (const auto* ann = std::get_if<BufferMapAnnounce>(&delivery.payload)) {
    if (ann->channel != channel_.id) return;
    auto it = neighbors_.find(from);
    if (it == neighbors_.end()) return;
    it->second.map = ann->map;
    it->second.last_seen = simulator_.now();
    update_live_edge();
    return;
  }

  if (const auto* dq = std::get_if<DataQuery>(&delivery.payload)) {
    if (dq->channel != channel_.id) return;
    if (auto it = neighbors_.find(from); it != neighbors_.end())
      it->second.last_seen = simulator_.now();
    if (!store_.has(dq->chunk)) {
      ++counters_.data_requests_unserveable;
      return;
    }
    ++counters_.data_requests_served;
    counters_.bytes_uploaded += channel_.chunk_bytes();
    DataReply r{channel_.id, dq->chunk, channel_.subpieces_per_chunk,
                channel_.chunk_bytes()};
    if (causal_)
      r.span = SpanContext{simulator_.allocate_span_id(), dq->span.id};
    if (trace_ != nullptr) {
      sim::TraceEvent ev(simulator_.now(), "data_serve");
      ev.field("peer", identity_.ip.to_string())
          .field("to", from.to_string())
          .field("chunk", static_cast<std::uint64_t>(dq->chunk))
          .field("bytes", channel_.chunk_bytes());
      if (causal_) ev.field("span", r.span.id).field("parent", r.span.parent);
      trace_->write(ev);
    }
    send(from, Message{r});
    return;
  }

  if (const auto* dr = std::get_if<DataReply>(&delivery.payload)) {
    if (dr->channel != channel_.id) return;
    auto pending = pending_data_.find(dr->chunk);
    auto nb = neighbors_.find(from);
    if (pending != pending_data_.end() && pending->second.target == from) {
      if (nb != neighbors_.end()) {
        Neighbor& n = nb->second;
        n.in_flight = std::max(0, n.in_flight - 1);
        const double lat = (simulator_.now() - pending->second.sent_at)
                               .as_seconds();
        n.service_s = (1 - kEwmaAlpha) * n.service_s + kEwmaAlpha * lat;
        n.last_seen = simulator_.now();
        n.bytes_from += dr->payload_bytes;
      }
      pending_data_.erase(pending);
    }
    ++counters_.data_replies_received;
    if (store_.insert(dr->chunk)) {
      counters_.bytes_downloaded += dr->payload_bytes;
      live_edge_ = std::max(live_edge_, dr->chunk);
      if (causal_ && trace_ != nullptr) {
        sim::TraceEvent ev(simulator_.now(), "chunk_delivered");
        ev.field("peer", identity_.ip.to_string())
            .field("from", from.to_string())
            .field("chunk", static_cast<std::uint64_t>(dr->chunk))
            .field("span", dr->span.id)
            .field("parent", dr->span.parent);
        trace_->write(ev);
      }
    } else {
      ++counters_.duplicate_chunks;
    }
    return;
  }

  if (std::holds_alternative<Goodbye>(delivery.payload)) {
    drop_neighbor(from, /*notify=*/false);
    return;
  }
}

}  // namespace ppsim::proto
